"""The soft copy-on-write checkpoint protocol (§4.2, Fig. 7).

Guarantee: the final image matches a stop-the-world checkpoint taken at
the quiesce point ``t1``, while the application runs concurrently with
the copy phase.  Writes to not-yet-checkpointed buffers are isolated by
the frontend's CoW guard (shadow copy on device); writes detected only
by the validator (mis-speculation) abort the checkpoint, which then
falls back to a stop-the-world retry for liveness.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.core.frontend import PhosFrontend
from repro.core.protocols.base import (
    RETRY_SUPPORTS,
    Protocol,
    ProtocolConfig,
    ProtocolContext,
    record_modules,
)
from repro.core.protocols.registry import register
from repro.core.protocols.stop_world import checkpoint_stop_world
from repro.core.quiesce import resume
from repro.core.session import COW_POOL_BYTES, CheckpointSession
from repro.cpu.criu import CriuEngine
from repro.sim.engine import Engine
from repro.sim.trace import Tracer
from repro.storage.image import CheckpointImage
from repro.storage.media import Medium


@register
class CowCheckpoint(Protocol):
    """Soft CoW: concurrent copy, image cut at the quiesce time t1."""

    name = "cow"
    kind = "checkpoint"
    aliases = ("soft-cow", "copy-on-write")
    supports = frozenset({
        "coordinated", "prioritized", "chunk_bytes", "cow_pool_bytes",
        "parent",
    }) | RETRY_SUPPORTS
    needs_frontend = True
    summary = ("concurrent copy isolated by CoW guards; image equals a "
               "stop-the-world checkpoint at t1 (§4.2)")

    def prepare(self, ctx: ProtocolContext) -> None:
        ctx.image = CheckpointImage(name=ctx.name or f"cow-{ctx.process.name}")

    def phase_admit(self, ctx: ProtocolContext):
        # A checkpoint of a partially-restored process would capture
        # not-yet-loaded buffers; wait for any in-flight restore first.
        if ctx.frontend.restore_session is not None:
            yield ctx.frontend.restore_session.done

    def phase_plan(self, ctx: ProtocolContext) -> None:
        record_modules(ctx.image, ctx.process)
        ctx.session = CheckpointSession(
            ctx.engine, "cow", ctx.image, self.config.cow_pool_bytes
        )
        # Coordinated copy ordering (§5): write-hot buffers first, so the
        # imminent writes find them already checkpointed (no CoW needed).
        ctx.frontend.begin_checkpoint(
            ctx.session, hot_order=ctx.planner.copy_order(self.name)
        )
        if self.config.parent is not None:
            _inherit_unchanged(ctx.frontend, ctx.session, self.config.parent)
        resume([ctx.process])

    def phase_transfer(self, ctx: ProtocolContext):
        # Concurrent copy, CoW-isolated.
        try:
            with obs.span("copy"):
                yield from ctx.planner.copy_all(
                    ctx.session, ctx.process, ctx.medium, ctx.criu
                )
        finally:
            # Guarded for idempotence: a teardown (chaos kill, daemon
            # kill) may race this finally with the driver's recovery.
            if ctx.frontend.ckpt_session is ctx.session:
                ctx.frontend.end_checkpoint()
            _release_shadows(ctx.session, ctx.process)

    def phase_validate(self, ctx: ProtocolContext) -> bool:
        return not ctx.session.aborted

    def phase_abort(self, ctx: ProtocolContext):
        # Liveness fallback (§4.2): discard, retry stop-the-world.
        session = ctx.session
        if ctx.tracer:
            ctx.tracer.mark("cow-abort", reason=session.abort_reason)
        obs.counter("cow/abort",
                    reason=session.abort_reason or "unknown").inc()
        retry = yield from checkpoint_stop_world(
            ctx.engine, ctx.process, ctx.medium, ctx.criu,
            name=f"{ctx.image.name}-retry", tracer=ctx.tracer,
        )
        return retry, session

    def phase_commit(self, ctx: ProtocolContext):
        ctx.image.finalize(ctx.t_quiesce)
        return ctx.image, ctx.session


def checkpoint_cow(engine: Engine, frontend: PhosFrontend, medium: Medium,
                   criu: CriuEngine, name: str = "",
                   coordinated: bool = True, prioritized: bool = True,
                   cow_pool_bytes: int = COW_POOL_BYTES,
                   chunk_bytes: Optional[int] = None,
                   parent: Optional[CheckpointImage] = None,
                   tracer: Optional[Tracer] = None):
    """Generator: one CoW checkpoint of the frontend's process.

    Returns ``(image, session)``.  On mis-speculation abort, the
    returned image comes from the stop-the-world retry and
    ``session.aborted`` is True.

    ``parent`` enables *incremental* checkpointing (the GPU analog of
    CRIU's incremental dump, which the paper enables for the CPU side):
    a buffer the frontend has not seen written since the parent's
    checkpoint time inherits the parent's record with no data movement.
    Soundness rests on the write-heat history, which validated
    speculation keeps honest inside checkpoint windows (and
    ``always_instrument`` extends to all execution); validator-reported
    hidden writes update the history, so such buffers are never skipped.
    """
    protocol = CowCheckpoint(ProtocolConfig(
        coordinated=coordinated, prioritized=prioritized,
        cow_pool_bytes=cow_pool_bytes, chunk_bytes=chunk_bytes,
        parent=parent,
    ))
    return protocol.checkpoint(
        engine, process=frontend.process, frontend=frontend, medium=medium,
        criu=criu, name=name, tracer=tracer,
    )


def _inherit_unchanged(frontend: PhosFrontend, session: CheckpointSession,
                       parent: CheckpointImage) -> None:
    """Copy parent records for buffers unwritten since the parent's t1."""
    from repro.core.session import BufState

    parent.require_finalized()
    cutoff = parent.checkpoint_time
    for gpu_index, plan in session.plan.items():
        parent_records = parent.gpu_buffers.get(gpu_index, {})
        for buf in plan:
            record = parent_records.get(buf.id)
            if record is None or record.addr != buf.addr or record.size != buf.size:
                continue  # layout changed: full copy for this buffer
            history = frontend.write_history.get(buf.id)
            if history is not None and history[1] > cutoff:
                continue  # written since the parent: must be re-captured
            session.image.add_gpu_buffer(gpu_index, record)
            session.set_state(buf, BufState.DONE)
            session.stats.bytes_skipped_incremental += buf.size


def _release_shadows(session: CheckpointSession, process) -> None:
    """Free any shadows left behind by an aborted copy phase.

    Delegates to the protocol engine's idempotent teardown helper so a
    teardown racing this phase-level cleanup (chaos kill, daemon kill)
    never double-frees or double-credits the CoW pool.
    """
    Protocol._release_session_memory(session, process)
