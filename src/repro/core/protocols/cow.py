"""The soft copy-on-write checkpoint protocol (§4.2, Fig. 7).

Guarantee: the final image matches a stop-the-world checkpoint taken at
the quiesce point ``t1``, while the application runs concurrently with
the copy phase.  Writes to not-yet-checkpointed buffers are isolated by
the frontend's CoW guard (shadow copy on device); writes detected only
by the validator (mis-speculation) abort the checkpoint, which then
falls back to a stop-the-world retry for liveness.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.core.engine import checkpoint_all
from repro.core.frontend import PhosFrontend
from repro.core.quiesce import quiesce, resume
from repro.core.session import COW_POOL_BYTES, CheckpointSession
from repro.core.protocols.stop_world import checkpoint_stop_world
from repro.cpu.criu import CriuEngine
from repro.sim.engine import Engine
from repro.sim.trace import Tracer
from repro.storage.image import CheckpointImage
from repro.storage.media import Medium


def checkpoint_cow(engine: Engine, frontend: PhosFrontend, medium: Medium,
                   criu: CriuEngine, name: str = "",
                   coordinated: bool = True, prioritized: bool = True,
                   cow_pool_bytes: int = COW_POOL_BYTES,
                   chunk_bytes: Optional[int] = None,
                   parent: Optional[CheckpointImage] = None,
                   tracer: Optional[Tracer] = None):
    """Generator: one CoW checkpoint of the frontend's process.

    Returns ``(image, session)``.  On mis-speculation abort, the
    returned image comes from the stop-the-world retry and
    ``session.aborted`` is True.

    ``parent`` enables *incremental* checkpointing (the GPU analog of
    CRIU's incremental dump, which the paper enables for the CPU side):
    a buffer the frontend has not seen written since the parent's
    checkpoint time inherits the parent's record with no data movement.
    Soundness rests on the write-heat history, which validated
    speculation keeps honest inside checkpoint windows (and
    ``always_instrument`` extends to all execution); validator-reported
    hidden writes update the history, so such buffers are never skipped.
    """
    process = frontend.process
    image = CheckpointImage(name=name or f"cow-{process.name}")
    with obs.span("checkpoint/cow", image=image.name):
        # A checkpoint of a partially-restored process would capture
        # not-yet-loaded buffers; wait for any in-flight restore first.
        if frontend.restore_session is not None:
            yield frontend.restore_session.done
        # Phase 1: quiesce — regulates state to a stop-checkpoint at t1.
        yield from quiesce(engine, [process], tracer)
        t1 = engine.now
        _record_modules(image, process)
        session = CheckpointSession(engine, "cow", image, cow_pool_bytes)
        # Coordinated copy ordering (§5): write-hot buffers first, so the
        # imminent writes find them already checkpointed (no CoW needed).
        frontend.begin_checkpoint(
            session, hot_order="hot-first" if coordinated else None
        )
        if parent is not None:
            _inherit_unchanged(frontend, session, parent)
        resume([process])
        # Phase 2: concurrent copy, CoW-isolated.
        try:
            with obs.span("copy"):
                yield from checkpoint_all(
                    engine, session, process, medium, criu,
                    coordinated=coordinated, prioritized=prioritized,
                    chunk_bytes=chunk_bytes, tracer=tracer,
                )
        finally:
            frontend.end_checkpoint()
            _release_shadows(session, process)
        if session.aborted:
            # Liveness fallback (§4.2): discard, retry stop-the-world.
            if tracer:
                tracer.mark("cow-abort", reason=session.abort_reason)
            obs.counter("cow/abort",
                        reason=session.abort_reason or "unknown").inc()
            retry = yield from checkpoint_stop_world(
                engine, process, medium, criu, name=f"{image.name}-retry",
                tracer=tracer,
            )
            return retry, session
        image.finalize(t1)
    return image, session


def _inherit_unchanged(frontend: PhosFrontend, session: CheckpointSession,
                       parent: CheckpointImage) -> None:
    """Copy parent records for buffers unwritten since the parent's t1."""
    from repro.core.session import BufState

    parent.require_finalized()
    cutoff = parent.checkpoint_time
    for gpu_index, plan in session.plan.items():
        parent_records = parent.gpu_buffers.get(gpu_index, {})
        for buf in plan:
            record = parent_records.get(buf.id)
            if record is None or record.addr != buf.addr or record.size != buf.size:
                continue  # layout changed: full copy for this buffer
            history = frontend.write_history.get(buf.id)
            if history is not None and history[1] > cutoff:
                continue  # written since the parent: must be re-captured
            session.image.add_gpu_buffer(gpu_index, record)
            session.set_state(buf, BufState.DONE)
            session.stats.bytes_skipped_incremental += buf.size


def _record_modules(image: CheckpointImage, process) -> None:
    for gpu_index, ctx in process.contexts.items():
        image.gpu_modules[gpu_index] = sorted(ctx.loaded_modules)
    image.context_meta = {
        "gpu_indices": list(process.gpu_indices),
        "cpu_pages": process.host.memory.n_pages,
    }


def _release_shadows(session: CheckpointSession, process) -> None:
    """Free any shadows left behind by an aborted copy phase."""
    for gpu_index in session.plan:
        gpu = process.machine.gpu(gpu_index)
        by_id = {b.id: b for b in session.plan[gpu_index]}
        for buf_id in [bid for bid in session.shadows if bid in by_id]:
            shadow = session.shadows.pop(buf_id)
            gpu.memory.free(shadow)
            session.release_pool(gpu_index, shadow.size)
        for buf in session.deferred_frees.get(gpu_index, ()):
            gpu.memory.free(buf)
        session.deferred_frees[gpu_index] = []
