"""The soft recopy checkpoint protocol (§4.3, Fig. 8).

Guarantee: the final image matches a stop-the-world checkpoint taken at
the *end* of the copy phase ``t2`` — the freshest possible state, which
live migration requires.  Four phases: quiesce, concurrent copy with
dirty tracking, re-quiesce, recopy of the dirty buffers and CPU pages.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.core.frontend import PhosFrontend
from repro.core.protocols.base import (
    RETRY_SUPPORTS,
    Protocol,
    ProtocolConfig,
    ProtocolContext,
    record_modules,
)
from repro.core.protocols.registry import register
from repro.core.quiesce import quiesce, resume
from repro.core.session import CheckpointSession
from repro.cpu.criu import CriuEngine
from repro.sim.engine import Engine
from repro.sim.trace import Tracer
from repro.storage.image import CheckpointImage
from repro.storage.media import Medium


@register
class RecopyCheckpoint(Protocol):
    """Soft recopy: concurrent copy + dirty recopy, image cut at t2."""

    name = "recopy"
    kind = "checkpoint"
    aliases = ("soft-recopy",)
    supports = frozenset({
        "coordinated", "prioritized", "chunk_bytes", "keep_stopped",
        "bandwidth_scale", "precopy_rounds",
    }) | RETRY_SUPPORTS
    needs_frontend = True
    summary = ("concurrent copy with dirty tracking, re-quiesce, recopy "
               "the delta; image equals a stop-the-world checkpoint at "
               "t2 (§4.3)")

    def prepare(self, ctx: ProtocolContext) -> None:
        ctx.image = CheckpointImage(
            name=ctx.name or f"recopy-{ctx.process.name}"
        )

    def phase_admit(self, ctx: ProtocolContext):
        # A checkpoint of a partially-restored process would capture
        # not-yet-loaded buffers; wait for any in-flight restore first.
        if ctx.frontend.restore_session is not None:
            yield ctx.frontend.restore_session.done

    def phase_plan(self, ctx: ProtocolContext) -> None:
        record_modules(ctx.image, ctx.process)
        ctx.session = CheckpointSession(ctx.engine, "recopy", ctx.image)
        # §5's coordination for recopy is the CPU-before-GPU ordering in
        # the planner's copy_all; buffer-level reordering does not pay
        # off when write periods are shorter than the copy window (a
        # buffer gets re-dirtied regardless of where in the window it is
        # copied) — copy_order() returns None here.
        ctx.frontend.begin_checkpoint(
            ctx.session, hot_order=ctx.planner.copy_order(self.name)
        )
        resume([ctx.process])

    def phase_transfer(self, ctx: ProtocolContext):
        engine, session, process = ctx.engine, ctx.session, ctx.process
        # Concurrent copy with dirty tracking, then (optionally) the
        # iterative pre-copy rounds, then the final quiesce + recopy.
        try:
            with obs.span("copy"):
                yield from ctx.planner.copy_all(
                    session, process, ctx.medium, ctx.criu
                )
            # Iterative concurrent pre-copy rounds (§4.3 extension).
            prev_bytes = None
            by_id = {
                gpu_index: {b.id: b for b in session.plan[gpu_index]}
                for gpu_index in session.plan
            }
            for _ in range(self.config.precopy_rounds):
                snapshot = {
                    gpu_index: set(session.dirty[gpu_index])
                    for gpu_index in session.plan
                }
                round_bytes = sum(
                    by_id[g][bid].size
                    for g, ids in snapshot.items()
                    for bid in ids if bid in by_id[g]
                )
                if round_bytes == 0:
                    break
                if prev_bytes is not None and round_bytes >= 0.8 * prev_bytes:
                    break  # the delta stopped shrinking: quiesce now
                prev_bytes = round_bytes
                for gpu_index in session.plan:
                    session.dirty[gpu_index] -= snapshot[gpu_index]
                with obs.span("precopy-round", bytes=round_bytes):
                    passes = [
                        ctx.spawn_worker(
                            ctx.planner.recopy_dirty(
                                session, process.machine.gpu(gpu_index),
                                ctx.medium, dirty_ids=snapshot[gpu_index],
                            ),
                            name=f"precopy-gpu{gpu_index}",
                        )
                        for gpu_index in session.plan
                    ]
                    yield engine.all_of(passes)
            # Re-quiesce (writes during the drain still tracked).
            session.final_quiesce_start = engine.now
            yield from quiesce(engine, [process], ctx.tracer)
        finally:
            # Guarded for idempotence against a racing teardown.
            if ctx.frontend.ckpt_session is session:
                ctx.frontend.end_checkpoint()
        ctx.t_image = engine.now
        # Recopy dirty GPU buffers and dirty CPU pages, stopped.
        span = ctx.tracer.begin("recopy") if ctx.tracer else None
        with obs.span("recopy"):
            dirty_pages = process.host.memory.dirty_pages()
            yield from ctx.criu.recopy_dirty(process.host, ctx.image,
                                             ctx.medium, dirty_pages)
            # Each GPU recopies its dirty delta over its own link,
            # concurrently.
            recopies = [
                ctx.spawn_worker(
                    ctx.planner.recopy_dirty(
                        session, process.machine.gpu(gpu_index), ctx.medium,
                    ),
                    name=f"recopy-gpu{gpu_index}",
                )
                for gpu_index in session.plan
            ]
            yield engine.all_of(recopies)
            for gpu_index in session.plan:
                # Buffers freed during the window do not exist at t2.
                for buf_id in session.freed_ids[gpu_index]:
                    ctx.image.gpu_buffers.get(gpu_index, {}).pop(buf_id, None)
        if span is not None:
            ctx.tracer.end(span)

    def phase_commit(self, ctx: ProtocolContext):
        ctx.image.finalize(ctx.t_image)
        if not self.config.keep_stopped:
            resume([ctx.process])
        return ctx.image, ctx.session


def checkpoint_recopy(engine: Engine, frontend: PhosFrontend, medium: Medium,
                      criu: CriuEngine, name: str = "",
                      coordinated: bool = True, prioritized: bool = True,
                      keep_stopped: bool = False,
                      bandwidth_scale: float = 1.0,
                      chunk_bytes: Optional[int] = None,
                      precopy_rounds: int = 0,
                      tracer: Optional[Tracer] = None):
    """Generator: one recopy checkpoint.  Returns ``(image, session)``.

    With ``keep_stopped=True`` the process is left quiesced after the
    final recopy — live migration resumes it on the target node
    instead.

    ``precopy_rounds`` enables the iterative extension §4.3 mentions
    ("we can also iteratively do the concurrent recopy similar to
    CPU-based protocols [14]"): up to that many extra *concurrent*
    recopy rounds run before the final quiesce, each moving the current
    dirty delta while the application keeps dirtying; rounds stop early
    once the delta stops shrinking, so a write-heavy steady state does
    not loop pointlessly.
    """
    protocol = RecopyCheckpoint(ProtocolConfig(
        coordinated=coordinated, prioritized=prioritized,
        keep_stopped=keep_stopped, bandwidth_scale=bandwidth_scale,
        chunk_bytes=chunk_bytes, precopy_rounds=max(0, precopy_rounds),
    ))
    return protocol.checkpoint(
        engine, process=frontend.process, frontend=frontend, medium=medium,
        criu=criu, name=name, tracer=tracer,
    )
