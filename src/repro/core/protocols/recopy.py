"""The soft recopy checkpoint protocol (§4.3, Fig. 8).

Guarantee: the final image matches a stop-the-world checkpoint taken at
the *end* of the copy phase ``t2`` — the freshest possible state, which
live migration requires.  Four phases: quiesce, concurrent copy with
dirty tracking, re-quiesce, recopy of the dirty buffers and CPU pages.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.core.engine import checkpoint_all, recopy_gpu_dirty
from repro.core.frontend import PhosFrontend
from repro.core.quiesce import quiesce, resume
from repro.core.session import CheckpointSession
from repro.cpu.criu import CriuEngine
from repro.sim.engine import Engine
from repro.sim.trace import Tracer
from repro.storage.image import CheckpointImage
from repro.storage.media import Medium


def checkpoint_recopy(engine: Engine, frontend: PhosFrontend, medium: Medium,
                      criu: CriuEngine, name: str = "",
                      coordinated: bool = True, prioritized: bool = True,
                      keep_stopped: bool = False,
                      bandwidth_scale: float = 1.0,
                      chunk_bytes: Optional[int] = None,
                      precopy_rounds: int = 0,
                      tracer: Optional[Tracer] = None):
    """Generator: one recopy checkpoint.  Returns ``(image, session)``.

    With ``keep_stopped=True`` the process is left quiesced after the
    final recopy — live migration resumes it on the target node
    instead.

    ``precopy_rounds`` enables the iterative extension §4.3 mentions
    ("we can also iteratively do the concurrent recopy similar to
    CPU-based protocols [14]"): up to that many extra *concurrent*
    recopy rounds run before the final quiesce, each moving the current
    dirty delta while the application keeps dirtying; rounds stop early
    once the delta stops shrinking, so a write-heavy steady state does
    not loop pointlessly.
    """
    process = frontend.process
    image = CheckpointImage(name=name or f"recopy-{process.name}")
    with obs.span("checkpoint/recopy", image=image.name):
        # A checkpoint of a partially-restored process would capture
        # not-yet-loaded buffers; wait for any in-flight restore first.
        if frontend.restore_session is not None:
            yield frontend.restore_session.done
        # Phase 1: quiesce so no write escapes tracking.
        yield from quiesce(engine, [process], tracer)
        _record_modules(image, process)
        session = CheckpointSession(engine, "recopy", image)
        # §5's coordination for recopy is the CPU-before-GPU ordering in
        # checkpoint_all; buffer-level reordering does not pay off when
        # write periods are shorter than the copy window (a buffer gets
        # re-dirtied regardless of where in the window it is copied).
        frontend.begin_checkpoint(session)
        resume([process])
        # Phase 2: concurrent copy with dirty tracking.
        try:
            with obs.span("copy"):
                yield from checkpoint_all(
                    engine, session, process, medium, criu,
                    coordinated=coordinated, prioritized=prioritized,
                    bandwidth_scale=bandwidth_scale, chunk_bytes=chunk_bytes,
                    tracer=tracer,
                )
            # Phase 2b (extension): iterative concurrent pre-copy rounds.
            prev_bytes = None
            by_id = {
                gpu_index: {b.id: b for b in session.plan[gpu_index]}
                for gpu_index in session.plan
            }
            for _ in range(max(0, precopy_rounds)):
                snapshot = {
                    gpu_index: set(session.dirty[gpu_index])
                    for gpu_index in session.plan
                }
                round_bytes = sum(
                    by_id[g][bid].size
                    for g, ids in snapshot.items()
                    for bid in ids if bid in by_id[g]
                )
                if round_bytes == 0:
                    break
                if prev_bytes is not None and round_bytes >= 0.8 * prev_bytes:
                    break  # the delta stopped shrinking: quiesce now
                prev_bytes = round_bytes
                for gpu_index in session.plan:
                    session.dirty[gpu_index] -= snapshot[gpu_index]
                with obs.span("precopy-round", bytes=round_bytes):
                    passes = [
                        engine.spawn(
                            recopy_gpu_dirty(
                                engine, session, process.machine.gpu(gpu_index),
                                medium, prioritized=prioritized,
                                bandwidth_scale=bandwidth_scale,
                                chunk_bytes=chunk_bytes,
                                dirty_ids=snapshot[gpu_index], tracer=tracer,
                            ),
                            name=f"precopy-gpu{gpu_index}",
                        )
                        for gpu_index in session.plan
                    ]
                    yield engine.all_of(passes)
            # Phase 3: re-quiesce (writes during the drain still tracked).
            session.final_quiesce_start = engine.now
            yield from quiesce(engine, [process], tracer)
        finally:
            frontend.end_checkpoint()
        t2 = engine.now
        # Phase 4: recopy dirty GPU buffers and dirty CPU pages, stopped.
        span = tracer.begin("recopy") if tracer else None
        with obs.span("recopy"):
            dirty_pages = process.host.memory.dirty_pages()
            yield from criu.recopy_dirty(process.host, image, medium,
                                         dirty_pages)
            # Each GPU recopies its dirty delta over its own link,
            # concurrently.
            recopies = [
                engine.spawn(
                    recopy_gpu_dirty(
                        engine, session, process.machine.gpu(gpu_index),
                        medium, prioritized=prioritized,
                        bandwidth_scale=bandwidth_scale,
                        chunk_bytes=chunk_bytes, tracer=tracer,
                    ),
                    name=f"recopy-gpu{gpu_index}",
                )
                for gpu_index in session.plan
            ]
            yield engine.all_of(recopies)
            for gpu_index in session.plan:
                # Buffers freed during the window do not exist at t2.
                for buf_id in session.freed_ids[gpu_index]:
                    image.gpu_buffers.get(gpu_index, {}).pop(buf_id, None)
        if span is not None:
            tracer.end(span)
        image.finalize(t2)
        if not keep_stopped:
            resume([process])
    return image, session


def _record_modules(image: CheckpointImage, process) -> None:
    for gpu_index, ctx in process.contexts.items():
        image.gpu_modules[gpu_index] = sorted(ctx.loaded_modules)
    image.context_meta = {
        "gpu_indices": list(process.gpu_indices),
        "cpu_pages": process.host.memory.n_pages,
    }
