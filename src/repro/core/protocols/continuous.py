"""The continuous checkpoint protocol: streamed deltas + write-behind.

This is the §A.1 frequency model taken to its operating point: instead
of one checkpoint per request, a ``continuous`` run commits a chain of
incremental images — a self-contained root, then dirty-scaled deltas —
each landing on the DRAM-tier catalog the moment it seals, while a
background :class:`~repro.storage.writebehind.WriteBehindDrainer`
streams every committed image down the DRAM → SSD → remote tier stack.
The application only ever pays the incremental protocol's concurrent
copy cost per round; durability deepens asynchronously behind it.

Streaming changes the failure contract.  A classic protocol run is
atomic: abort means *no* image.  A stream is prefix-atomic: a fault in
round ``r`` (or in the drainer) leaves rounds ``0..r-1`` committed and
restorable on the DRAM tier, with any partially-drained lower-tier
replica revoked — the run returns the committed prefix instead of
raising, unless nothing committed at all.  The chaos matrix checks
exactly this contract (``repro.chaos.matrix``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro import obs
from repro.core.protocols.base import (
    RETRY_SUPPORTS,
    Protocol,
    ProtocolConfig,
    ProtocolContext,
)
from repro.core.protocols.incremental import IncrementalCheckpoint
from repro.core.protocols.registry import register
from repro.errors import ReproError
from repro.storage.media import tier_stack
from repro.storage.writebehind import WriteBehindDrainer


@dataclass
class StreamSummary:
    """What a continuous run did: the committed chain + drain results."""

    tiers: list[str] = field(default_factory=list)
    #: Committed images, chain order (root first).
    images: list = field(default_factory=list)
    rounds_committed: int = 0
    #: The fault that ended the stream early, if any (the run still
    #: returns normally when at least one round committed).
    error: Optional[BaseException] = None
    #: The drainer's fault, if the write-behind side died.
    drain_error: Optional[BaseException] = None
    drain_stats: Any = None

    @property
    def complete(self) -> bool:
        return self.error is None and self.drain_error is None


#: Inner-round tunables forwarded to the incremental protocol.
_INNER_FIELDS = ("coordinated", "prioritized", "chunk_bytes",
                 "content_chunk_bytes", "bandwidth_scale", "max_retries",
                 "retry_backoff")


@register
class ContinuousCheckpoint(Protocol):
    """Streamed incremental checkpoints with tiered write-behind."""

    name = "continuous"
    kind = "checkpoint"
    #: Marks the prefix-atomic failure contract for the chaos matrix.
    streaming = True
    supports = frozenset({
        "coordinated", "prioritized", "chunk_bytes", "content_chunk_bytes",
        "bandwidth_scale", "parent", "interval", "rounds", "drain_tiers",
        "drain_depth",
    }) | RETRY_SUPPORTS
    needs_frontend = True
    summary = ("streams a chain of dirty-scaled incremental checkpoints "
               "(DRAM-tier commit per round) while a background drainer "
               "replicates each committed image down the DRAM->SSD->remote "
               "tier stack; faults keep the committed prefix restorable")

    def _run_checkpoint(self, ctx: ProtocolContext):
        engine, cfg = ctx.engine, self.config
        name = ctx.name or f"continuous-{ctx.process.name}"
        tiers = (list(cfg.drain_tiers) if cfg.drain_tiers is not None
                 else tier_stack(engine, ctx.medium))
        if tiers[0] is not ctx.medium:
            raise ReproError(
                "drain_tiers[0] must be the checkpoint medium itself "
                "(the DRAM tier rounds commit to)"
            )
        drainer = WriteBehindDrainer(engine, tiers, depth=cfg.drain_depth,
                                     name=f"{name}-drain")
        drainer.start()
        stream = StreamSummary(tiers=[t.name for t in tiers])
        last = cfg.parent
        try:
            with obs.span(f"checkpoint/{self.name}", **self.span_attrs(ctx)):
                self._chaos_enter("admit", ctx)
                for r in range(cfg.rounds):
                    if r > 0 and cfg.interval > 0:
                        yield engine.timeout(cfg.interval)
                    # Stream-level chaos addressing: the first round is
                    # the stream's "quiesce", later rounds its
                    # "transfer" (each inner run reports its own
                    # phases under the ``incremental`` name).
                    self._chaos_enter("quiesce" if r == 0 else "transfer",
                                      ctx)
                    inner = IncrementalCheckpoint(self._round_config(last))
                    image, session = yield from inner.checkpoint(
                        engine, process=ctx.process, frontend=ctx.frontend,
                        medium=ctx.medium, criu=ctx.criu,
                        name=f"{name}@{r}", tracer=ctx.tracer,
                    )
                    ctx.image, ctx.session = image, session
                    stream.images.append(image)
                    stream.rounds_committed += 1
                    last = image
                    obs.counter("protocol/continuous-rounds").inc()
                    self._chaos_enter("validate", ctx)
                    # Backpressure: blocks while `drain_depth` images
                    # already wait on the slowest tier.
                    yield from drainer.enqueue(image)
                    self._chaos_enter("commit", ctx)
        except ReproError as err:
            if stream.rounds_committed == 0:
                # Nothing committed: behave like an atomic protocol.
                drainer.finish()
                obs.counter("protocol/aborts", protocol=self.name,
                            outcome="crash").inc()
                raise
            # Prefix-atomic: the committed rounds stay restorable; the
            # stream just ends early and reports why.
            stream.error = err
            obs.counter("protocol/continuous-truncated").inc()
        finally:
            drainer.finish()
        # Let the write-behind side settle (drains the queue, or fires
        # immediately when the drainer died) before reporting.
        yield drainer.done
        stream.drain_error = drainer.failed
        stream.drain_stats = drainer.stats
        ctx.extras["stream"] = stream
        ctx.extras["drainer"] = drainer
        return last, stream

    def _round_config(self, parent) -> ProtocolConfig:
        """The inner incremental protocol's config for one round."""
        kwargs = {f: getattr(self.config, f) for f in _INNER_FIELDS}
        return ProtocolConfig(parent=parent, **kwargs)
