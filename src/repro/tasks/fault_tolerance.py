"""Fault tolerance via periodic checkpointing (§7, Figs. 11a and 12).

Metrics follow §8.1:

* **checkpoint overhead** — the application stall caused by one
  checkpoint taken at the beginning of an iteration, computed by
  differencing total training time with and without the checkpoint;
* **wasted GPU time** — the §A.1 model evaluated at each system's
  optimal checkpoint frequency f* = sqrt(NF/2O), with F = 1 failure
  per GPU-hour (the rate §8.1 takes from industry reports).

Checkpoints land in host DRAM ("to avoid slow storage").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs, units
from repro.apps.base import provision
from repro.apps.specs import get_spec
from repro.baselines.cuda_checkpoint import (
    cuda_checkpoint_checkpoint,
    cuda_checkpoint_restore,
)
from repro.baselines.singularity import singularity_checkpoint, singularity_restore
from repro.cluster import Machine
from repro.core.daemon import Phos
from repro.core.frequency import optimal_frequency, wasted_gpu_hours
from repro.core.protocols import ProtocolConfig
from repro.core.transfer import EXPERIMENT_CHUNK
from repro.errors import CheckpointError, InvalidValueError
from repro.sim import Engine

SYSTEMS = ("phos", "singularity", "cuda-checkpoint")

__all__ = ["SYSTEMS", "EXPERIMENT_CHUNK", "FtMeasurement",
           "measure_checkpoint_overhead", "measure_restore_time",
           "wasted_fraction"]


@dataclass
class FtMeasurement:
    """One (system, app) fault-tolerance measurement."""

    system: str
    app: str
    iter_time: float
    #: Application stall caused by one checkpoint (seconds).
    checkpoint_stall: float
    #: Time to bring the app back after a failure (seconds).
    restore_time: float = 0.0
    supported: bool = True


def _world(spec_name: str):
    eng = Engine()
    spec = get_spec(spec_name)
    machine = Machine(eng, n_gpus=spec.n_gpus)
    phos = Phos(eng, machine, use_context_pool=False)
    process, workload = provision(eng, machine, spec)
    phos.attach(process)
    return eng, machine, phos, process, workload, spec


def measure_checkpoint_overhead(system: str, spec_name: str,
                                warm_iters: int = 2, span_iters: int = 3,
                                chunk_bytes: int = EXPERIMENT_CHUNK) -> FtMeasurement:
    """Measure per-checkpoint application stall for one system/app.

    The checkpoint is requested at the beginning of an iteration — the
    optimal timing §8.3 establishes.  ``span_iters`` iterations run
    while the checkpoint proceeds; stall = elapsed - baseline.
    """
    if system not in SYSTEMS:
        raise InvalidValueError(f"unknown system {system!r}")
    spec = get_spec(spec_name)
    if system == "cuda-checkpoint" and spec.n_gpus > 1:
        return FtMeasurement(system=system, app=spec_name, iter_time=0.0,
                             checkpoint_stall=0.0, supported=False)
    eng, machine, phos, process, workload, spec = _world(spec_name)

    def driver(eng):
        yield from workload.setup()
        yield from workload.run(warm_iters)
        t0 = eng.now
        yield from workload.run(span_iters)
        baseline = eng.now - t0
        # Checkpoint at the beginning of the next iteration.
        if system == "phos":
            handle = phos.checkpoint(
                process, mode="cow",
                config=ProtocolConfig(chunk_bytes=chunk_bytes))
        elif system == "singularity":
            handle = eng.spawn(singularity_checkpoint(
                eng, process, phos.medium, phos.criu, tracer=phos.tracer))
        else:
            handle = eng.spawn(cuda_checkpoint_checkpoint(
                eng, process, phos.medium, phos.criu, tracer=phos.tracer))
        t1 = eng.now
        yield from workload.run(span_iters)
        elapsed = eng.now - t1
        result = yield handle
        if system == "phos":
            image, session = result
            if session.aborted:
                raise CheckpointError("unexpected CoW abort in experiment")
        obs.record("task/checkpoint-stall", t1,
                   end=t1 + max(0.0, elapsed - baseline),
                   system=system, app=spec_name)
        return baseline / span_iters, elapsed - baseline

    iter_time, stall = eng.run_process(driver(eng))
    eng.run()
    return FtMeasurement(system=system, app=spec_name, iter_time=iter_time,
                         checkpoint_stall=max(0.0, stall))


def measure_restore_time(system: str, spec_name: str,
                         chunk_bytes: int = EXPERIMENT_CHUNK) -> float:
    """Time from restore request until the app completes a full step."""
    spec = get_spec(spec_name)
    if system == "cuda-checkpoint" and spec.n_gpus > 1:
        return float("nan")
    eng, machine, phos, process, workload, spec = _world(spec_name)
    use_pool = system == "phos"
    if use_pool:
        phos.pool = None  # keep the checkpoint-side service simple
    phos_dst = Phos(eng, machine=Machine(eng, name="nodeR", n_gpus=spec.n_gpus),
                    use_context_pool=use_pool)
    if use_pool:
        eng.run_process(phos_dst.boot())

    def driver(eng):
        yield from workload.setup()
        yield from workload.run(1)
        image, _ = yield phos.checkpoint(
            process, mode="cow",
            config=ProtocolConfig(chunk_bytes=chunk_bytes))
        t0 = eng.now
        if system == "phos":
            result = yield from phos_dst.restore(
                image, gpu_indices=list(range(spec.n_gpus)), concurrent=True
            )
            new_process, _frontend, session = result
        elif system == "singularity":
            new_process = yield from singularity_restore(
                eng, image, phos_dst.machine, list(range(spec.n_gpus)),
                phos_dst.medium, phos_dst.criu)
        else:
            new_process = yield from cuda_checkpoint_restore(
                eng, image, phos_dst.machine, list(range(spec.n_gpus)),
                phos_dst.medium, phos_dst.criu)
        workload.bind_restored(new_process)
        yield from workload.run(1)
        obs.record("task/restore-time", t0, system=system, app=spec_name)
        return eng.now - t0

    restore_time = eng.run_process(driver(eng))
    eng.run()
    return restore_time


def wasted_fraction(measurement: FtMeasurement, restore_time: float,
                    failures_per_gpu_hour: float = 1.0) -> tuple[float, float]:
    """(wasted fraction of total GPU time, optimal frequency per hour).

    Evaluates the §A.1 model at the system's own optimal frequency.
    The fraction normalizes the model's waste by the N*T GPU-hours of
    the job, giving Fig. 12's per-system bar before cross-system
    normalization.
    """
    spec = get_spec(measurement.app)
    n = spec.n_gpus
    overhead_h = measurement.checkpoint_stall / units.HOUR
    restore_h = restore_time / units.HOUR
    f_star = optimal_frequency(n, failures_per_gpu_hour, overhead_h)
    total_hours = 1.0
    waste = wasted_gpu_hours(
        n, failures_per_gpu_hour, total_hours, overhead_h, restore_h, f_star
    )
    return waste / (n * total_hours), f_star
