"""Downstream applications of C/R (§7): the end-to-end task drivers.

* :mod:`repro.tasks.fault_tolerance` — periodic checkpointing at the
  optimal frequency, checkpoint-overhead and wasted-GPU-time metrics
  (Figs. 11a, 12);
* :mod:`repro.tasks.live_migration` — pre-copy live migration over
  GPU-direct RDMA, downtime metric (Fig. 13);
* :mod:`repro.tasks.serverless` — cold-start via restore, end-to-end
  execution-time metric (Fig. 14).
"""

from repro.tasks.distributed import DistributedJob
from repro.tasks.ft_controller import FaultToleranceController, FtRunResult
from repro.tasks.fault_tolerance import (
    FtMeasurement,
    measure_checkpoint_overhead,
    measure_restore_time,
    wasted_fraction,
)
from repro.tasks.live_migration import MigrationResult, migrate
from repro.tasks.serverless import ColdStartResult, cold_start

__all__ = [
    "ColdStartResult",
    "DistributedJob",
    "FaultToleranceController",
    "FtMeasurement",
    "FtRunResult",
    "MigrationResult",
    "cold_start",
    "measure_checkpoint_overhead",
    "measure_restore_time",
    "migrate",
    "wasted_fraction",
]
