"""Live migration of GPU processes between machines (§7, Fig. 13).

PHOS implements pre-copy-style live migration: a soft-recopy checkpoint
streams state to the target over GPU-direct RDMA while the process runs
("the destination should resume exactly at the last execution state"),
then the final quiesce + recopy moves only the dirty delta, and the
process resumes on the target with a pooled context — no redundant
staging through host memory.

Baselines stop the world for the entire transfer: their downtime is the
full copy over 100 Gbps RDMA plus the context-creation barrier.

Downtime = (first step completed on target) - (source stopped for the
final time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs, units
from repro.apps.base import provision
from repro.apps.specs import get_spec
from repro.baselines.cuda_checkpoint import (
    cuda_checkpoint_checkpoint,
    cuda_checkpoint_restore,
)
from repro.baselines.singularity import singularity_checkpoint, singularity_restore
from repro.cluster import Cluster
from repro.core.daemon import Phos
from repro.core.protocols import ProtocolConfig
from repro.errors import InvalidValueError
from repro.sim import Engine
from repro.sim.domains import World
from repro.storage.media import Medium
from repro.tasks.fault_tolerance import EXPERIMENT_CHUNK

#: Per-GPU RDMA NIC bandwidth (100 Gbps each, §8 testbed).
RDMA_PER_GPU = units.RDMA_100GBPS


@dataclass
class MigrationResult:
    system: str
    app: str
    #: Application downtime (seconds) — Fig. 13's metric.
    downtime: float
    #: Wall time of the whole migration (pre-copy included).
    total_time: float
    supported: bool = True


def _rdma_medium(engine: Engine, n_gpus: int) -> Medium:
    """The GPU-direct RDMA path into the target machine's GPU memory.

    One 100 Gbps NIC per GPU; flows from different GPUs ride different
    NICs, so the aggregate is n_gpus x 12.5 GBps.
    """
    bw = n_gpus * RDMA_PER_GPU
    return Medium(engine, name="gpu-direct-rdma", write_bw=bw, read_bw=bw,
                  latency=5 * units.USEC)


def migrate(system: str, spec_name: str, warm_steps: int = 2,
            chunk_bytes: int = EXPERIMENT_CHUNK,
            clock_domains: bool = False) -> MigrationResult:
    """Migrate one application between two machines; returns downtime.

    ``clock_domains=True`` shards source and target into separate
    :class:`~repro.sim.domains.ClockDomain` machines: the restore runs
    in the target domain, driven by control messages over RDMA-latency
    channels instead of an inline call.  Only ``system="phos"`` supports
    it (the baselines stop the world and run inline by construction);
    downtime matches the single-domain run to within the control-message
    latency.
    """
    spec = get_spec(spec_name)
    if clock_domains:
        if system != "phos":
            raise InvalidValueError(
                "clock_domains migration is only modelled for "
                "system='phos'; the baselines run inline on one engine"
            )
        return _migrate_phos_domains(spec_name, spec, warm_steps, chunk_bytes)
    if system == "cuda-checkpoint" and spec.n_gpus > 1:
        return MigrationResult(system=system, app=spec_name, downtime=float("nan"),
                               total_time=float("nan"), supported=False)
    eng = Engine()
    cluster = Cluster.testbed(eng, n_machines=2, n_gpus=spec.n_gpus)
    src, dst = cluster.machines
    phos_src = Phos(eng, src, use_context_pool=False)
    phos_dst = Phos(eng, dst, use_context_pool=(system == "phos"))
    if system == "phos":
        eng.run_process(phos_dst.boot())
    process, workload = provision(eng, src, spec)
    phos_src.attach(process)
    rdma = _rdma_medium(eng, spec.n_gpus)
    #: Per-GPU flows are NIC-bound: cap each at RDMA, not PCIe.
    scale = min(1.0, RDMA_PER_GPU / src.spec.pcie_bw)

    # The job keeps serving during the live pre-copy; run enough steps
    # to span the transfer window.
    steps_during = max(2, int(10.0 / spec.step_time))

    def driver(eng):
        yield from workload.setup()
        yield from workload.run(warm_steps)
        t_start = eng.now
        if system == "phos":
            handle = phos_src.checkpoint(
                process, mode="recopy", medium=rdma,
                config=ProtocolConfig(keep_stopped=True, bandwidth_scale=scale,
                                      chunk_bytes=chunk_bytes),
            )
            # The application keeps running through the pre-copy; it
            # blocks at the API gate when the final quiesce hits.
            eng.spawn(workload.run(steps_during), name="migrating-app")
            image, session = yield handle
            stop_time = session.final_quiesce_start
            # GPU-direct already placed the data in target GPU memory.
            result = yield from phos_dst.restore(
                image, gpu_indices=list(range(spec.n_gpus)),
                machine=dst, skip_data_copy=True,
            )
            new_process = result[0]
        else:
            stop_time = eng.now
            if system == "singularity":
                image = yield from singularity_checkpoint(
                    eng, process, rdma, phos_src.criu, keep_stopped=True,
                    tracer=phos_src.tracer,
                )
                new_process = yield from singularity_restore(
                    eng, image, dst, list(range(spec.n_gpus)),
                    dst.dram, phos_dst.criu,
                )
            elif system == "cuda-checkpoint":
                image = yield from cuda_checkpoint_checkpoint(
                    eng, process, rdma, phos_src.criu, keep_stopped=True,
                    tracer=phos_src.tracer,
                )
                new_process = yield from cuda_checkpoint_restore(
                    eng, image, dst, list(range(spec.n_gpus)),
                    dst.dram, phos_dst.criu,
                )
            else:
                raise InvalidValueError(f"unknown system {system!r}")
        workload.bind_restored(new_process)
        # Downtime ends when the process can execute again; the step
        # after merely validates that it actually does.
        resumed = eng.now
        obs.record("task/migrate-downtime", stop_time, end=resumed,
                   system=system, app=spec_name)
        obs.record("task/migrate-total", t_start, end=resumed,
                   system=system, app=spec_name)
        yield from workload.run(1)
        return resumed - stop_time, resumed - t_start

    downtime, total = eng.run_process(driver(eng))
    eng.run()
    return MigrationResult(system=system, app=spec_name,
                           downtime=downtime, total_time=total)


def _migrate_phos_domains(spec_name: str, spec, warm_steps: int,
                          chunk_bytes: int) -> MigrationResult:
    """PHOS migration with source and target in separate clock domains.

    The source-side driver is unchanged up to the final quiesce; the
    restore half runs as a server process *in the target domain*,
    started by a control message and acknowledged with the target-side
    resume timestamp.  The post-restore validation step of the
    single-domain path is skipped — it runs after the downtime window
    closes and only validates, and the restored process lives in a
    domain the source-side workload driver must not touch.
    """
    world = World()
    cluster = Cluster.testbed(world, n_machines=2, n_gpus=spec.n_gpus)
    src, dst = cluster.machines
    eng_src, eng_dst = src.engine, dst.engine
    ctrl = world.channel(eng_src, eng_dst, units.RDMA_LINK_LATENCY,
                         name="migrate-ctrl", kind="control")
    ack = world.channel(eng_dst, eng_src, units.RDMA_LINK_LATENCY,
                        name="migrate-ack", kind="control")
    phos_src = Phos(eng_src, src, use_context_pool=False)
    phos_dst = Phos(eng_dst, dst, use_context_pool=True)
    # Boot the target daemon to completion before provisioning; the
    # full drain re-joins both domain clocks at the frontier, so the
    # source-side driver starts at the same timestamp as in the
    # single-engine run (where boot advances the one shared clock).
    eng_dst.spawn(phos_dst.boot(), name="boot")
    world.run()
    process, workload = provision(eng_src, src, spec)
    phos_src.attach(process)
    rdma = _rdma_medium(eng_src, spec.n_gpus)
    scale = min(1.0, RDMA_PER_GPU / src.spec.pcie_bw)
    steps_during = max(2, int(10.0 / spec.step_time))

    def server():
        cmd, image, n_gpus = yield ctrl.recv()
        assert cmd == "restore"
        yield from phos_dst.restore(
            image, gpu_indices=list(range(n_gpus)),
            machine=dst, skip_data_copy=True,
        )
        ack.send(("restored", eng_dst.now))

    def driver():
        yield from workload.setup()
        yield from workload.run(warm_steps)
        t_start = eng_src.now
        handle = phos_src.checkpoint(
            process, mode="recopy", medium=rdma,
            config=ProtocolConfig(keep_stopped=True, bandwidth_scale=scale,
                                  chunk_bytes=chunk_bytes),
        )
        eng_src.spawn(workload.run(steps_during), name="migrating-app")
        image, session = yield handle
        stop_time = session.final_quiesce_start
        ctrl.send(("restore", image, spec.n_gpus))
        _, resumed = yield ack.recv()
        obs.record("task/migrate-downtime", stop_time, end=resumed,
                   system="phos", app=spec_name)
        obs.record("task/migrate-total", t_start, end=resumed,
                   system="phos", app=spec_name)
        return resumed - stop_time, resumed - t_start

    eng_dst.spawn(server(), name="migrate-server")
    downtime, total = world.run(
        eng_src.spawn(driver(), name="migrate-driver"))
    world.run()
    return MigrationResult(system="phos", app=spec_name,
                           downtime=downtime, total_time=total)
