"""Live migration of GPU processes between machines (§7, Fig. 13).

PHOS implements pre-copy-style live migration: a soft-recopy checkpoint
streams state to the target over GPU-direct RDMA while the process runs
("the destination should resume exactly at the last execution state"),
then the final quiesce + recopy moves only the dirty delta, and the
process resumes on the target with a pooled context — no redundant
staging through host memory.

Baselines stop the world for the entire transfer: their downtime is the
full copy over 100 Gbps RDMA plus the context-creation barrier.

Downtime = (first step completed on target) - (source stopped for the
final time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs, units
from repro.apps.base import provision
from repro.apps.specs import get_spec
from repro.baselines.cuda_checkpoint import (
    cuda_checkpoint_checkpoint,
    cuda_checkpoint_restore,
)
from repro.baselines.singularity import singularity_checkpoint, singularity_restore
from repro.cluster import Cluster
from repro.core.daemon import Phos
from repro.core.protocols import ProtocolConfig
from repro.errors import InvalidValueError
from repro.sim import Engine
from repro.storage.media import Medium
from repro.tasks.fault_tolerance import EXPERIMENT_CHUNK

#: Per-GPU RDMA NIC bandwidth (100 Gbps each, §8 testbed).
RDMA_PER_GPU = units.RDMA_100GBPS


@dataclass
class MigrationResult:
    system: str
    app: str
    #: Application downtime (seconds) — Fig. 13's metric.
    downtime: float
    #: Wall time of the whole migration (pre-copy included).
    total_time: float
    supported: bool = True


def _rdma_medium(engine: Engine, n_gpus: int) -> Medium:
    """The GPU-direct RDMA path into the target machine's GPU memory.

    One 100 Gbps NIC per GPU; flows from different GPUs ride different
    NICs, so the aggregate is n_gpus x 12.5 GBps.
    """
    bw = n_gpus * RDMA_PER_GPU
    return Medium(engine, name="gpu-direct-rdma", write_bw=bw, read_bw=bw,
                  latency=5 * units.USEC)


def migrate(system: str, spec_name: str, warm_steps: int = 2,
            chunk_bytes: int = EXPERIMENT_CHUNK) -> MigrationResult:
    """Migrate one application between two machines; returns downtime."""
    spec = get_spec(spec_name)
    if system == "cuda-checkpoint" and spec.n_gpus > 1:
        return MigrationResult(system=system, app=spec_name, downtime=float("nan"),
                               total_time=float("nan"), supported=False)
    eng = Engine()
    cluster = Cluster.testbed(eng, n_machines=2, n_gpus=spec.n_gpus)
    src, dst = cluster.machines
    phos_src = Phos(eng, src, use_context_pool=False)
    phos_dst = Phos(eng, dst, use_context_pool=(system == "phos"))
    if system == "phos":
        eng.run_process(phos_dst.boot())
    process, workload = provision(eng, src, spec)
    phos_src.attach(process)
    rdma = _rdma_medium(eng, spec.n_gpus)
    #: Per-GPU flows are NIC-bound: cap each at RDMA, not PCIe.
    scale = min(1.0, RDMA_PER_GPU / src.spec.pcie_bw)

    # The job keeps serving during the live pre-copy; run enough steps
    # to span the transfer window.
    steps_during = max(2, int(10.0 / spec.step_time))

    def driver(eng):
        yield from workload.setup()
        yield from workload.run(warm_steps)
        t_start = eng.now
        if system == "phos":
            handle = phos_src.checkpoint(
                process, mode="recopy", medium=rdma,
                config=ProtocolConfig(keep_stopped=True, bandwidth_scale=scale,
                                      chunk_bytes=chunk_bytes),
            )
            # The application keeps running through the pre-copy; it
            # blocks at the API gate when the final quiesce hits.
            eng.spawn(workload.run(steps_during), name="migrating-app")
            image, session = yield handle
            stop_time = session.final_quiesce_start
            # GPU-direct already placed the data in target GPU memory.
            result = yield from phos_dst.restore(
                image, gpu_indices=list(range(spec.n_gpus)),
                machine=dst, skip_data_copy=True,
            )
            new_process = result[0]
        else:
            stop_time = eng.now
            if system == "singularity":
                image = yield from singularity_checkpoint(
                    eng, process, rdma, phos_src.criu, keep_stopped=True,
                    tracer=phos_src.tracer,
                )
                new_process = yield from singularity_restore(
                    eng, image, dst, list(range(spec.n_gpus)),
                    dst.dram, phos_dst.criu,
                )
            elif system == "cuda-checkpoint":
                image = yield from cuda_checkpoint_checkpoint(
                    eng, process, rdma, phos_src.criu, keep_stopped=True,
                    tracer=phos_src.tracer,
                )
                new_process = yield from cuda_checkpoint_restore(
                    eng, image, dst, list(range(spec.n_gpus)),
                    dst.dram, phos_dst.criu,
                )
            else:
                raise InvalidValueError(f"unknown system {system!r}")
        workload.bind_restored(new_process)
        # Downtime ends when the process can execute again; the step
        # after merely validates that it actually does.
        resumed = eng.now
        obs.record("task/migrate-downtime", stop_time, end=resumed,
                   system=system, app=spec_name)
        obs.record("task/migrate-total", t_start, end=resumed,
                   system=system, app=spec_name)
        yield from workload.run(1)
        return resumed - stop_time, resumed - t_start

    downtime, total = eng.run_process(driver(eng))
    eng.run()
    return MigrationResult(system=system, app=spec_name,
                           downtime=downtime, total_time=total)
