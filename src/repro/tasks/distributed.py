"""Distributed (multi-machine) training jobs and consistent C/R (§7).

Fault tolerance for distributed computing is the paper's first
downstream task: "we need to ensure the checkpoint from all the
involved processes is consistent.  Thus, we extended the quiescing
phase across all involved processes.  After the quiesce, we can
checkpoint each process with CoW separately."  Fig. 16's breakdown
notes that "coordinating between threads with RDMA to reach a global
quiesce is extremely efficient".

:class:`DistributedJob` runs one data-parallel replica per machine
(each replica may itself span several GPUs), averages gradients over
the inter-machine RDMA links every step, and offers:

* :meth:`checkpoint_all` — a globally-consistent CoW checkpoint of all
  replicas (one cross-machine quiesce barrier, then per-process CoW);
* :meth:`recover` — the paper's failure response: stop everything,
  restore every replica from the latest consistent cut, resume.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.apps.base import provision
from repro.apps.specs import AppSpec, get_spec
from repro.cluster import Cluster
from repro.core.daemon import Phos
from repro.core.protocols import ProtocolConfig
from repro.core.quiesce import quiesce
from repro.errors import CheckpointError, InvalidValueError
from repro.sim.engine import Engine

#: One RDMA round-trip per machine joining the global quiesce barrier.
CROSS_MACHINE_BARRIER_RTT = 10 * units.USEC


class DistributedJob:
    """A data-parallel job: one replica process per machine."""

    def __init__(self, engine: Engine, cluster: Cluster, spec_name: str) -> None:
        self.engine = engine
        self.cluster = cluster
        self.spec: AppSpec = get_spec(spec_name)
        if self.spec.kind != "train":
            raise InvalidValueError("distributed jobs are training jobs")
        self.replicas: list = []   # (machine, phos, process, workload)
        self.images: list = []     # latest consistent cut
        self.steps_done = 0

    # -- lifecycle ---------------------------------------------------------------
    def setup(self):
        """Generator: provision and initialize one replica per machine."""
        for machine in self.cluster.machines:
            phos = Phos(self.engine, machine, use_context_pool=False)
            process, workload = provision(
                self.engine, machine, self.spec,
                name=f"{self.spec.name}@{machine.name}",
            )
            phos.attach(process)
            self.replicas.append((machine, phos, process, workload))
        for _, _, _, workload in self.replicas:
            yield from workload.setup()

    @property
    def processes(self):
        return [proc for _, _, proc, _ in self.replicas]

    # -- training ----------------------------------------------------------------
    def run_steps(self, n: int):
        """Generator: n data-parallel steps with cross-machine averaging."""
        for _ in range(n):
            step_procs = [
                self.engine.spawn(
                    workload.run(1, start=self.steps_done),
                    name=f"step-{machine.name}",
                )
                for machine, _, _, workload in self.replicas
            ]
            yield self.engine.all_of(step_procs)
            yield from self._allreduce_across_machines()
            self.steps_done += 1

    def _allreduce_across_machines(self):
        """Average the first gradient buffer of GPU 0 across machines.

        Timing: a ring over the inter-machine RDMA links; functional:
        an elementwise sum applied to every replica (so replicas agree,
        which the recovery test verifies).
        """
        if len(self.replicas) < 2:
            return
        grads = []
        for _, _, _, workload in self.replicas:
            gpu0 = workload.process.gpu_indices[0]
            grads.append(workload.groups[gpu0]["grads"].buffers[0])
        nbytes = grads[0].size
        machines = [machine for machine, _, _, _ in self.replicas]
        n = len(machines)
        # Ring: each link moves 2(n-1)/n of the data.
        flows = []
        for i, src in enumerate(machines):
            dst = machines[(i + 1) % n]
            link = self.cluster.link(src, dst)
            flows.append(self.engine.spawn(
                link.flow(src, dst, 2 * (n - 1) / n * nbytes),
                name=f"ring-{src.name}",
            ))
        yield self.engine.all_of(flows)
        views = [g.data.view(np.uint64) for g in grads]
        with np.errstate(over="ignore"):
            total = views[0].copy()
            for v in views[1:]:
                total += v
        for g, v in zip(grads, views):
            v[:] = total
            g.touch()

    # -- consistent checkpoint -----------------------------------------------------
    def checkpoint_all(self, name: str = "",
                       config: ProtocolConfig | None = None):
        """Generator: one globally-consistent CoW cut of every replica.

        Every replica is checkpointed with the same ``config`` (one
        :class:`ProtocolConfig` shared across machines, so the cut is
        tuned uniformly).  Returns the list of images (one per replica,
        same cut).
        """
        if not self.replicas:
            raise CheckpointError("job has no replicas to checkpoint")
        # The global quiesce barrier spans machines over RDMA.
        yield self.engine.timeout(
            CROSS_MACHINE_BARRIER_RTT * len(self.replicas)
        )
        yield from quiesce(self.engine, self.processes)
        handles = [
            phos.checkpoint(process, mode="cow",
                            name=f"{name or 'dist'}-{machine.name}",
                            config=config)
            for machine, phos, process, _ in self.replicas
        ]
        results = yield self.engine.all_of(handles)
        images = []
        for image, session in results:
            if session.aborted:
                raise CheckpointError(
                    f"replica checkpoint aborted: {session.abort_reason}"
                )
            images.append(image)
        self.images = images
        return images

    # -- failure recovery ----------------------------------------------------------
    def recover(self):
        """Generator: stop everything, restore every replica from the
        latest consistent cut, and rebind the workloads (§7)."""
        if not self.images:
            raise CheckpointError("no consistent checkpoint to recover from")
        # "PHOS stops all GPU processes" — the survivors quiesce, the
        # failed ones are gone; all device memory is reclaimed.
        for i, (machine, phos, process, workload) in enumerate(self.replicas):
            phos.kill(process)
        new_replicas = []
        restore_procs = []
        for (machine, phos, _, workload), image in zip(self.replicas, self.images):
            def one(machine=machine, phos=phos, workload=workload, image=image):
                result = yield from phos.restore(
                    image, gpu_indices=list(range(self.spec.n_gpus)),
                    machine=machine, concurrent=True,
                )
                process, _, session = result
                workload.bind_restored(process)
                return machine, phos, process, workload, session

            restore_procs.append(self.engine.spawn(one(), name="dist-restore"))
        results = yield self.engine.all_of(restore_procs)
        sessions = []
        for machine, phos, process, workload, session in results:
            new_replicas.append((machine, phos, process, workload))
            sessions.append(session)
        self.replicas = new_replicas
        return sessions

    # -- introspection -------------------------------------------------------------
    def replica_states(self) -> list[dict[str, bytes]]:
        """Functional snapshot of each replica's GPU state, by tag."""
        out = []
        for _, _, process, _ in self.replicas:
            state = {}
            for gpu_index, bufs in process.runtime.allocations.items():
                for buf in bufs:
                    state[buf.tag] = buf.snapshot()
            out.append(state)
        return out
