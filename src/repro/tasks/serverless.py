"""Serverless GPU function cold start (§7, Fig. 14).

A checkpoint is taken just before the function's entry point; each cold
start restores from it and serves the request.  The metric is
end-to-end execution time: startup (restore) plus function execution,
per §8.1's "considering both startup and application function execution
time".  Function checkpoints live in host DRAM.

PHOS wins twice: the context pool removes the creation barrier, and
concurrent restore overlaps the remaining data copy with the first
tokens' execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.apps.base import provision
from repro.apps.specs import get_spec
from repro.baselines.cuda_checkpoint import cuda_checkpoint_restore
from repro.baselines.singularity import singularity_restore
from repro.cluster import Machine
from repro.core.daemon import Phos
from repro.core.protocols import ProtocolConfig
from repro.errors import InvalidValueError
from repro.sim import Engine
from repro.tasks.fault_tolerance import EXPERIMENT_CHUNK


@dataclass
class ColdStartResult:
    system: str
    app: str
    #: End-to-end time: restore + function execution (Fig. 14's bar).
    end_to_end: float
    #: The function-execution-only component.
    exec_time: float
    supported: bool = True
    #: Time until the restored process could run (the restore barrier).
    restore_s: float = 0.0
    #: Committed checkpoint-image size (the fleet's miss-fetch cost).
    image_bytes: int = 0


def cold_start(system: str, spec_name: str, n_requests: int = 8,
               chunk_bytes: int = EXPERIMENT_CHUNK,
               use_pool: bool | None = None) -> ColdStartResult:
    """One serverless cold start: restore, then serve ``n_requests``.

    ``use_pool`` overrides the worker daemon's context pool (default:
    on exactly for ``system="phos"``); the fleet calibrator measures
    the pool-miss path with ``use_pool=False``.

    An *unsupported* combination (cuda-checkpoint with a multi-GPU
    function) returns ``supported=False`` with NaN timings — callers
    aggregating over mixed results must exclude those rows (see
    :mod:`repro.stats`), never average over them.
    """
    spec = get_spec(spec_name)
    if spec.kind != "infer":
        raise InvalidValueError(
            "serverless cold start evaluates inference workloads only"
        )
    if n_requests < 1:
        raise InvalidValueError(
            f"cold start must serve at least one request, got "
            f"n_requests={n_requests}"
        )
    if chunk_bytes < 1:
        raise InvalidValueError(
            f"chunk_bytes must be positive, got {chunk_bytes}"
        )
    if system == "cuda-checkpoint" and spec.n_gpus > 1:
        return ColdStartResult(system=system, app=spec_name,
                               end_to_end=float("nan"), exec_time=float("nan"),
                               supported=False)
    if use_pool is None:
        use_pool = system == "phos"
    eng = Engine()
    machine = Machine(eng, n_gpus=spec.n_gpus)
    phos = Phos(eng, machine, use_context_pool=False)
    process, workload = provision(eng, machine, spec)
    phos.attach(process)
    # The restore target machine models a worker with a running PHOS
    # daemon (pool pre-filled at boot, before any request arrives).
    worker = Machine(eng, name="worker", n_gpus=spec.n_gpus)
    phos_worker = Phos(eng, worker,
                       use_context_pool=(system == "phos" and use_pool))
    if system == "phos" and use_pool:
        eng.run_process(phos_worker.boot())

    def driver(eng):
        # Initialize the function up to its entry point, checkpoint it.
        yield from workload.setup()
        yield from workload.run(1)  # warm the runtime (JIT caches etc.)
        image, _ = yield phos.checkpoint(
            process, mode="cow",
            config=ProtocolConfig(chunk_bytes=chunk_bytes))
        # A request arrives: cold-start from the checkpoint.
        t0 = eng.now
        if system == "phos":
            result = yield from phos_worker.restore(
                image, gpu_indices=list(range(spec.n_gpus)),
                concurrent=True, machine=worker,
            )
            new_process = result[0]
        elif system == "singularity":
            new_process = yield from singularity_restore(
                eng, image, worker, list(range(spec.n_gpus)),
                phos_worker.medium, phos_worker.criu,
            )
        elif system == "cuda-checkpoint":
            new_process = yield from cuda_checkpoint_restore(
                eng, image, worker, list(range(spec.n_gpus)),
                phos_worker.medium, phos_worker.criu,
            )
        else:
            raise InvalidValueError(f"unknown system {system!r}")
        t_exec = eng.now
        workload.bind_restored(new_process)
        yield from workload.run(n_requests)
        t_end = eng.now
        obs.record("task/cold-start", t0, end=t_end,
                   system=system, app=spec_name)
        obs.record("task/cold-start-exec", t_exec, end=t_end,
                   system=system, app=spec_name)
        return t_end - t0, t_end - t_exec, t_exec - t0, image.total_bytes()

    end_to_end, exec_time, restore_s, image_bytes = eng.run_process(driver(eng))
    eng.run()
    return ColdStartResult(system=system, app=spec_name,
                           end_to_end=end_to_end, exec_time=exec_time,
                           restore_s=restore_s, image_bytes=image_bytes)
