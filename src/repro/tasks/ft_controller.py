"""Closed-loop fault tolerance: periodic checkpoints + random failures.

§A.1 *models* the wasted GPU time at a checkpoint frequency; this
controller *measures* it: a training loop runs under periodic CoW
checkpoints while a seeded failure injector kills the process at
exponentially-distributed times (i.i.d., as the model assumes).  Each
failure triggers the paper's recovery — stop, restore the latest image,
recompute from its iteration.  Comparing the measured waste against the
model's prediction closes the loop on Fig. 12.

Failures are detected at iteration boundaries (a sub-iteration failure
wastes that iteration anyway, which is exactly the ``1/(2f)``-style
recomputation term the model charges).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import units
from repro.core.daemon import Phos
from repro.core.frequency import wasted_gpu_hours
from repro.core.protocols import ProtocolConfig
from repro.errors import CheckpointError
from repro.sim.engine import Engine


@dataclass
class FtRunResult:
    """Outcome of one closed-loop run."""

    target_iters: int
    wall_seconds: float
    iter_seconds: float
    failures: int = 0
    checkpoints: int = 0
    recomputed_iters: int = 0
    restore_seconds: float = 0.0
    checkpoint_stall_seconds: float = 0.0
    #: Failures that landed while a checkpoint was still in flight and
    #: tore it down mid-protocol (only with ``mid_checkpoint_kills``).
    mid_checkpoint_kills: int = 0

    @property
    def useful_seconds(self) -> float:
        return self.target_iters * self.iter_seconds

    @property
    def wasted_fraction(self) -> float:
        """Fraction of wall time that was not forward progress.

        A zero-duration run wasted nothing — ``target_iters=0``
        completes instantly with ``wall_seconds == 0.0``, and dividing
        by it would poison downstream aggregates with NaN/inf.
        """
        if self.wall_seconds == 0:
            return 0.0
        return max(0.0, self.wall_seconds - self.useful_seconds) / self.wall_seconds

    def predicted_wasted_fraction(self, n_gpus: int, failures_per_hour: float,
                                  frequency_per_hour: float,
                                  overhead_hours: float,
                                  restore_hours: float) -> float:
        """The §A.1 model's prediction for the same parameters."""
        hours = self.wall_seconds / units.HOUR
        waste = wasted_gpu_hours(
            n_gpus, failures_per_hour, hours, overhead_hours, restore_hours,
            frequency_per_hour,
        )
        return waste / (n_gpus * hours)


class FaultToleranceController:
    """Run a workload to a target iteration count under failures."""

    def __init__(self, engine: Engine, phos: Phos, process, workload,
                 failures_per_hour: float, checkpoint_every_iters: int,
                 seed: int = 1,
                 checkpoint_config: ProtocolConfig | None = None,
                 mid_checkpoint_kills: bool = False) -> None:
        if checkpoint_every_iters < 1:
            raise CheckpointError("checkpoint interval must be >= 1 iteration")
        self.engine = engine
        self.phos = phos
        self.process = process
        self.workload = workload
        self.failures_per_hour = failures_per_hour
        self.checkpoint_every = checkpoint_every_iters
        self.checkpoint_config = checkpoint_config
        #: When True, a failure that lands mid-checkpoint kills the
        #: process immediately — the in-flight protocol is torn down by
        #: ``Phos.kill`` (workers cancelled, session aborted, staged
        #: image discarded) instead of being politely awaited first.
        #: This is the realistic failure model: machines do not wait
        #: for checkpoints to finish before crashing.
        self.mid_checkpoint_kills = mid_checkpoint_kills
        self._rng = random.Random(seed)
        self._next_failure = self._draw_failure_gap()
        self.latest_image = None
        self.latest_image_iter = 0

    def _draw_failure_gap(self) -> float:
        """Exponential inter-arrival time, in seconds."""
        rate_per_second = self.failures_per_hour / units.HOUR
        return self._rng.expovariate(rate_per_second)

    def run(self, target_iters: int):
        """Generator: run until ``target_iters`` iterations completed."""
        engine = self.engine
        t_start = engine.now
        next_failure_at = t_start + self._next_failure
        result = FtRunResult(target_iters=target_iters, wall_seconds=0.0,
                             iter_seconds=0.0)
        # Baseline iteration time (failure-free, no checkpoints).
        t0 = engine.now
        yield from self.workload.run(1)
        result.iter_seconds = engine.now - t0
        completed = 1
        inflight = None
        while completed < target_iters:
            if completed % self.checkpoint_every == 0 and (
                inflight is None or inflight.triggered
            ):
                inflight = self.phos.checkpoint(
                    self.process, mode="cow", name=f"it-{completed}",
                    config=self.checkpoint_config,
                )
                inflight.add_callback(self._record_image(completed))
                result.checkpoints += 1
            yield from self.workload.run(1, start=completed)
            completed += 1
            if engine.now >= next_failure_at and self.latest_image is not None:
                # --- failure! ------------------------------------------------
                result.failures += 1
                if inflight is not None and not inflight.triggered:
                    if self.mid_checkpoint_kills:
                        # The kill below aborts the in-flight protocol;
                        # its image is discarded, never committed.
                        result.mid_checkpoint_kills += 1
                    else:
                        yield inflight
                t_fail = engine.now
                self.phos.kill(self.process)
                restored = yield from self.phos.restore(
                    self.latest_image,
                    gpu_indices=list(self.process.gpu_indices),
                    concurrent=True,
                )
                new_process, _, session = restored
                self.workload.bind_restored(new_process)
                self.process = new_process
                result.restore_seconds += engine.now - t_fail
                result.recomputed_iters += completed - self.latest_image_iter
                completed = self.latest_image_iter
                inflight = None
                next_failure_at = engine.now + self._draw_failure_gap()
        result.wall_seconds = engine.now - t_start
        return result

    def _record_image(self, iteration: int):
        def on_done(event) -> None:
            if event.ok:
                image, session = event.value
                if not session.aborted:
                    self.latest_image = image
                    self.latest_image_iter = iteration

        return on_done
