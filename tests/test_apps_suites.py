"""Unit tests for the §8.5 speculation feasibility study (Table 3)."""

import pytest

from repro.apps.suites import build_suites, run_speculation_study
from repro.core.tracker import BufferTable
from repro.gpu.memory import DeviceMemory
from repro.units import GIB


@pytest.fixture(scope="module")
def rows():
    return run_speculation_study()


def test_suite_kernel_counts_match_table3(rows):
    counts = {r.suite: r.kernels for r in rows}
    assert counts == {"rodinia": 44, "parboil": 18, "vllm": 66,
                      "tvm": 607, "flashinfer": 69}


def test_only_rodinia_has_a_failing_kernel(rows):
    failed = {r.suite: r.kernels_failed for r in rows}
    assert failed == {"rodinia": 1, "parboil": 0, "vllm": 0,
                      "tvm": 0, "flashinfer": 0}


def test_rodinia_failed_instances_match_its_kernel(rows):
    rodinia = next(r for r in rows if r.suite == "rodinia")
    # Exactly the legacy kernel's instances fail — 20, as in Table 3.
    assert rodinia.instances_failed == 20


def test_non_rodinia_suites_have_zero_failed_instances(rows):
    for r in rows:
        if r.suite != "rodinia":
            assert r.instances_failed == 0, r.suite


def test_instances_counted(rows):
    for r in rows:
        assert r.instances == r.kernels * {
            "rodinia": 20, "parboil": 40, "vllm": 12, "tvm": 3,
            "flashinfer": 12,
        }[r.suite]


def test_paper_reference_numbers_attached(rows):
    tvm = next(r for r in rows if r.suite == "tvm")
    assert tvm.paper_kernels == (607, 0)
    assert tvm.paper_instances == (186244, 0)


def test_failing_kernel_uses_module_global(rows):
    mem = DeviceMemory(capacity=1 * GIB)
    table = BufferTable(0)
    suites, _ = build_suites(mem, table)
    rodinia = next(s for s in suites if s.name == "rodinia")
    legacy = [k for k in rodinia.kernels if k.program.uses_globals]
    assert len(legacy) == 1
    others = [k for s in suites for k in s.kernels
              if s.name != "rodinia" and k.program.uses_globals]
    assert others == []
