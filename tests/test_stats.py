"""The shared sample-statistics helpers (NaN refusal, permutation
invariance).

Regression suite for the fleet/fig14 aggregation bugs: a NaN sample
from an unsupported (system, app) measurement used to propagate
silently into means and percentiles.  The helpers now raise
:class:`InvalidValueError` instead, and every percentile sorts its
input so worker merge order can never change a reported number.
"""

import math
import random

import pytest

from repro import stats
from repro.errors import InvalidValueError

NAN = float("nan")


# -- NaN refusal ------------------------------------------------------------

def test_mean_raises_on_nan():
    with pytest.raises(InvalidValueError):
        stats.mean([1.0, NAN, 3.0])


def test_percentile_raises_on_nan():
    with pytest.raises(InvalidValueError):
        stats.percentile([1.0, NAN], 50.0)


def test_tail_summary_raises_on_nan():
    with pytest.raises(InvalidValueError):
        stats.tail_summary([0.5, NAN, 0.7])


def test_empty_samples_raise_not_nan():
    with pytest.raises(InvalidValueError):
        stats.mean([])
    with pytest.raises(InvalidValueError):
        stats.percentile([], 99.0)


def test_percentile_rejects_bad_q():
    with pytest.raises(InvalidValueError):
        stats.percentile([1.0], -1.0)
    with pytest.raises(InvalidValueError):
        stats.percentile([1.0], 100.5)
    with pytest.raises(InvalidValueError):
        stats.percentile([1.0], NAN)


# -- values -----------------------------------------------------------------

def test_percentile_interpolates():
    assert stats.percentile([0.0, 10.0], 50.0) == 5.0
    assert stats.percentile([1.0, 2.0, 3.0, 4.0], 100.0) == 4.0
    assert stats.percentile([1.0, 2.0, 3.0, 4.0], 0.0) == 1.0
    assert stats.percentile([7.0], 99.9) == 7.0


def test_tail_summary_keys_and_ordering():
    samples = [float(i) for i in range(1000)]
    tail = stats.tail_summary(samples)
    assert set(tail) == {"p50", "p99", "p999"}
    assert tail["p50"] <= tail["p99"] <= tail["p999"]


def test_percentile_is_permutation_invariant():
    rng = random.Random(7)
    samples = [rng.expovariate(1.0) for _ in range(257)]
    shuffled = list(samples)
    rng.shuffle(shuffled)
    for q in (50.0, 99.0, 99.9):
        assert stats.percentile(samples, q) == stats.percentile(shuffled, q)


# -- supported_samples ------------------------------------------------------

def test_supported_samples_drops_unsupported_rows():
    rows = [
        {"supported": True, "speedup": 2.0},
        {"supported": False, "speedup": NAN},
        {"supported": True, "speedup": 4.0},
    ]
    assert stats.supported_samples(rows, "speedup") == [2.0, 4.0]


def test_supported_samples_raises_on_supported_nan():
    # A row claiming support while carrying NaN is an upstream bug and
    # must never silently skew the aggregate.
    rows = [{"supported": True, "speedup": NAN}]
    with pytest.raises(InvalidValueError):
        stats.supported_samples(rows, "speedup")


def test_supported_samples_attr_rows_and_callables():
    class Row:
        def __init__(self, ok, v):
            self.supported = ok
            self.latency = v

    rows = [Row(True, 1.5), Row(False, NAN), Row(True, 2.5)]
    assert stats.supported_samples(rows, "latency") == [1.5, 2.5]
    assert stats.supported_samples(
        rows, lambda r: r.latency * 2, supported=lambda r: r.supported
    ) == [3.0, 5.0]


def test_fig14_mean_rows_exclude_unsupported():
    # The end-to-end regression: cuda-checkpoint's mean must average
    # its supported apps only, never NaN, never silently shrink.
    from repro.experiments.fig14_serverless import run

    result = run(apps=("resnet152-infer", "llama3-70b-infer"), n_requests=2)
    means = {r["system"]: r for r in result.rows if r["app"] == "mean"}
    cuda = means["cuda-checkpoint"]
    assert cuda["supported"] == "1/2"
    assert not math.isnan(cuda["speedup_vs_phos"])
    phos = means["phos"]
    assert phos["supported"] == "2/2"
    assert phos["speedup_vs_phos"] == pytest.approx(1.0)
    assert cuda["speedup_vs_phos"] > 1.0
