"""Unit tests for the cluster topology and checkpoint media."""

import pytest

from repro import units
from repro.cluster import Cluster, Machine, RdmaLink
from repro.errors import CheckpointError, InvalidValueError
from repro.sim import Engine
from repro.storage.image import CheckpointImage, GpuBufferRecord
from repro.storage.media import DramMedia, RemoteDramMedia, SsdMedia


@pytest.fixture
def eng():
    return Engine()


# --- machines and cluster -------------------------------------------------------


def test_machine_has_gpus_and_dram(eng):
    m = Machine(eng, n_gpus=4)
    assert len(m.gpus) == 4
    assert m.gpu(3).index == 3
    assert m.dram.name.endswith("dram")


def test_machine_gpu_index_validated(eng):
    m = Machine(eng, n_gpus=2)
    with pytest.raises(InvalidValueError):
        m.gpu(5)
    with pytest.raises(InvalidValueError):
        Machine(eng, n_gpus=0)


def test_testbed_matches_paper(eng):
    cluster = Cluster.testbed(eng)
    assert len(cluster.machines) == 2
    assert all(len(m.gpus) == 8 for m in cluster.machines)
    link = cluster.link(cluster.machines[0], cluster.machines[1])
    assert link.bandwidth == units.RDMA_100GBPS


def test_rdma_link_timing(eng):
    a, b = Machine(eng, "a", 1), Machine(eng, "b", 1)
    link = RdmaLink(eng, a, b)

    def driver(eng):
        yield from link.flow(a, b, units.RDMA_100GBPS)  # 1 second of data
        return eng.now

    assert eng.run_process(driver(eng)) == pytest.approx(1.0, rel=0.01)


def test_rdma_directions_independent(eng):
    a, b = Machine(eng, "a", 1), Machine(eng, "b", 1)
    link = RdmaLink(eng, a, b, bandwidth=100.0)
    done = {}

    def mover(eng, name, src, dst):
        yield from link.flow(src, dst, 100.0)
        done[name] = eng.now

    eng.spawn(mover(eng, "ab", a, b))
    eng.spawn(mover(eng, "ba", b, a))
    eng.run()
    # Each direction drains at full bandwidth (1 s) plus one propagation
    # latency — shared-media interference would show up as ~2 s.
    expected = pytest.approx(1.0 + link.latency)
    assert done == {"ab": expected, "ba": expected}


def test_unknown_link_rejected(eng):
    a, b, c = (Machine(eng, n, 1) for n in "abc")
    cluster = Cluster(eng, [a, b])
    with pytest.raises(InvalidValueError):
        cluster.link(a, c)


# --- media ----------------------------------------------------------------------


def test_dram_faster_than_ssd(eng):
    dram, ssd = DramMedia(eng), SsdMedia(eng)

    def timed(medium):
        e = Engine()
        m = type(medium)(e)

        def driver(e):
            t0 = e.now
            yield from m.write_flow(10 * units.GB)
            return e.now - t0

        return e.run_process(driver(e))

    assert timed(dram) < timed(ssd)


def test_remote_dram_is_rdma_bound(eng):
    medium = RemoteDramMedia(eng)

    def driver(eng):
        t0 = eng.now
        yield from medium.read_flow(units.RDMA_100GBPS)
        return eng.now - t0

    assert eng.run_process(driver(eng)) == pytest.approx(1.0, rel=0.01)


def test_media_rate_cap_applies(eng):
    medium = DramMedia(eng)

    def driver(eng):
        t0 = eng.now
        yield from medium.write_flow(100.0 * units.GB, rate_cap=10 * units.GB)
        return eng.now - t0

    assert eng.run_process(driver(eng)) == pytest.approx(10.0, rel=0.01)


# --- checkpoint image ---------------------------------------------------------------


def test_image_finalize_lifecycle():
    image = CheckpointImage(name="x")
    image.add_cpu_page(0, b"\x01" * 16)
    image.add_gpu_buffer(0, GpuBufferRecord(1, 0x1000, 4096, b"\x02" * 64))
    with pytest.raises(CheckpointError):
        image.require_finalized()
    image.finalize(12.5)
    assert image.checkpoint_time == 12.5
    image.require_finalized()
    with pytest.raises(CheckpointError):
        image.finalize(13.0)
    with pytest.raises(CheckpointError):
        image.add_cpu_page(1, b"\x00" * 16)
    with pytest.raises(CheckpointError):
        image.add_gpu_buffer(0, GpuBufferRecord(2, 0x2000, 4096, b""))


def test_image_size_accounting():
    image = CheckpointImage()
    image.cpu_page_size = 4096
    image.add_cpu_page(0, b"x" * 16)
    image.add_cpu_page(1, b"y" * 16)
    image.add_gpu_buffer(0, GpuBufferRecord(1, 0x1000, 1000, b""))
    image.add_gpu_buffer(1, GpuBufferRecord(2, 0x1000, 2000, b""))
    assert image.cpu_bytes() == 2 * 4096
    assert image.gpu_bytes() == 3000
    assert image.gpu_bytes(0) == 1000
    assert image.total_bytes() == 3000 + 8192
    assert image.buffer_count(0) == 1


def test_image_recopy_overwrites_record():
    image = CheckpointImage()
    image.add_gpu_buffer(0, GpuBufferRecord(1, 0x1000, 100, b"old"))
    image.add_gpu_buffer(0, GpuBufferRecord(1, 0x1000, 100, b"new"))
    assert image.gpu_buffers[0][1].data == b"new"
    assert image.buffer_count(0) == 1
