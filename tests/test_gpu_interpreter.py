"""Unit tests for the kernel interpreter over real buffer bytes."""

import pytest

from repro.errors import KernelFault
from repro.gpu.interpreter import AccessKind, run_kernel
from repro.gpu.isa import ProgramBuilder
from repro.gpu.memory import DeviceMemory
from repro.gpu.program import (
    build_copy,
    build_fill,
    build_gather,
    build_global_reader,
    build_global_writer,
    build_inplace_add,
    build_partial_fill,
    build_reduce_sum,
    build_saxpy,
    build_scale,
    build_scatter,
)
from repro.units import MIB


@pytest.fixture
def mem():
    return DeviceMemory(capacity=64 * MIB, default_data_size=512)


def words(buf, n):
    return [buf.load_word(buf.addr + 8 * i) for i in range(n)]


def set_words(buf, values):
    for i, v in enumerate(values):
        buf.store_word(buf.addr + 8 * i, v)


def test_fill_writes_constant(mem):
    y = mem.alloc(512)
    run_kernel(build_fill(), [y.addr, 8, 7], n_threads=8, memory=mem)
    assert words(y, 8) == [7] * 8


def test_copy_moves_data(mem):
    x, y = mem.alloc(512), mem.alloc(512)
    set_words(x, range(10, 18))
    run_kernel(build_copy(), [x.addr, y.addr, 8], n_threads=8, memory=mem)
    assert words(y, 8) == list(range(10, 18))


def test_scale_multiplies(mem):
    x, y = mem.alloc(512), mem.alloc(512)
    set_words(x, [1, 2, 3, 4])
    run_kernel(build_scale(factor=5), [x.addr, y.addr, 4], n_threads=4, memory=mem)
    assert words(y, 4) == [5, 10, 15, 20]


def test_saxpy_computes(mem):
    x, y, z = (mem.alloc(512) for _ in range(3))
    set_words(x, [1, 2, 3])
    set_words(y, [10, 20, 30])
    run_kernel(build_saxpy(), [2, x.addr, y.addr, z.addr, 3], n_threads=3, memory=mem)
    assert words(z, 3) == [12, 24, 36]


def test_guard_skips_excess_threads(mem):
    y = mem.alloc(512)
    run_kernel(build_fill(), [y.addr, 4, 9], n_threads=16, memory=mem)
    assert words(y, 8) == [9, 9, 9, 9, 0, 0, 0, 0]


def test_inplace_add_reads_and_writes(mem):
    y = mem.alloc(512)
    set_words(y, [5, 6])
    run = run_kernel(build_inplace_add(), [y.addr, 2], n_threads=2, memory=mem)
    assert words(y, 2) == [6, 7]
    assert run.read_addrs() == run.written_addrs()


def test_reduce_sum_loops(mem):
    x, out = mem.alloc(512), mem.alloc(64)
    set_words(x, range(1, 9))
    run_kernel(build_reduce_sum(), [x.addr, out.addr, 8], n_threads=4, memory=mem)
    assert out.load_word(out.addr) == 36


def test_gather_indirect_reads_stay_in_buffer(mem):
    x, idx, y = (mem.alloc(512) for _ in range(3))
    set_words(x, [100, 200, 300, 400])
    set_words(idx, [3, 2, 1, 0])
    run = run_kernel(build_gather(), [x.addr, idx.addr, y.addr, 4], n_threads=4, memory=mem)
    assert words(y, 4) == [400, 300, 200, 100]
    for addr in run.read_addrs():
        assert x.contains(addr) or idx.contains(addr)


def test_scatter_indirect_writes_stay_in_buffer(mem):
    x, idx, y = (mem.alloc(512) for _ in range(3))
    set_words(x, [1, 2, 3, 4])
    set_words(idx, [2, 3, 0, 1])
    run = run_kernel(build_scatter(), [x.addr, idx.addr, y.addr, 4], n_threads=4, memory=mem)
    assert words(y, 4) == [3, 4, 1, 2]
    assert all(y.contains(a) for a in run.written_addrs())


def test_partial_fill_writes_only_first_half(mem):
    y = mem.alloc(512)
    run = run_kernel(build_partial_fill(), [y.addr, 8, 5], n_threads=8, memory=mem)
    assert words(y, 8) == [5, 5, 5, 5, 0, 0, 0, 0]
    assert len(run.written_addrs()) == 4


def test_global_reader_reads_hidden_buffer(mem):
    hidden, y = mem.alloc(512), mem.alloc(512)
    set_words(hidden, [11, 22])
    prog = build_global_reader("gr", "table", hidden.addr)
    run = run_kernel(prog, [y.addr, 2], n_threads=2, memory=mem)
    assert words(y, 2) == [11, 22]
    assert any(hidden.contains(a) for a in run.read_addrs())


def test_global_writer_writes_hidden_buffer(mem):
    x, hidden = mem.alloc(512), mem.alloc(512)
    set_words(x, [7, 8])
    prog = build_global_writer("gw", "out", hidden.addr)
    run = run_kernel(prog, [x.addr, 2], n_threads=2, memory=mem)
    assert words(hidden, 2) == [7, 8]
    assert all(hidden.contains(a) for a in run.written_addrs())


def test_access_records_have_kinds_and_tids(mem):
    x, y = mem.alloc(512), mem.alloc(512)
    run = run_kernel(build_copy(), [x.addr, y.addr, 2], n_threads=2, memory=mem,
                     detailed=True)
    kinds = {a.kind for a in run.accesses}
    assert kinds == {AccessKind.READ, AccessKind.WRITE}
    assert {a.tid for a in run.accesses} == {0, 1}


def test_record_accesses_can_be_disabled(mem):
    x, y = mem.alloc(512), mem.alloc(512)
    run = run_kernel(
        build_copy(), [x.addr, y.addr, 2], n_threads=2, memory=mem,
        record_accesses=False,
    )
    assert run.accesses == []
    assert words(y, 2) == words(x, 2)


def test_runaway_loop_faults(mem):
    b = ProgramBuilder("spin", "void spin()")
    b.label("top").jmp("top").exit()
    with pytest.raises(KernelFault, match="steps"):
        run_kernel(b.build(), [], n_threads=1, memory=mem, max_steps=100)


def test_bad_arg_index_faults(mem):
    b = ProgramBuilder("args", "void args(long a)")
    b.arg(0, 3).exit()
    with pytest.raises(KernelFault, match="ARG index"):
        run_kernel(b.build(), [1], n_threads=1, memory=mem)


def test_zero_threads_rejected(mem):
    with pytest.raises(KernelFault):
        run_kernel(build_fill(), [0, 0, 0], n_threads=0, memory=mem)


def test_mod_by_zero_faults(mem):
    b = ProgramBuilder("m", "void m()")
    b.seti(0, 5).seti(1, 0).mod(2, 0, 1).exit()
    with pytest.raises(KernelFault, match="modulo"):
        run_kernel(b.build(), [], n_threads=1, memory=mem)


def test_instrumented_kernel_requires_validation(mem):
    from repro.gpu.instrument import instrument_program

    twin = instrument_program(build_fill())
    with pytest.raises(KernelFault, match="validation"):
        run_kernel(twin, [0, 0, 0], n_threads=1, memory=mem)


def test_arithmetic_wraps_64_bits(mem):
    b = ProgramBuilder("wrap", "void wrap(long* y)")
    b.arg(0, 0)
    b.seti(1, 2**63).muli(1, 1, 4)  # overflows
    b.stg(0, 1).exit()
    y = mem.alloc(64)
    run_kernel(b.build(), [y.addr], n_threads=1, memory=mem)
    assert y.load_word(y.addr) == 0
