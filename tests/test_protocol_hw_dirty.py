"""Integration tests: the hypothetical hardware-dirty-bit recopy (§9)."""

from repro.api.runtime import GpuProcess
from repro.cluster import Machine
from repro.core.protocols.hw_dirty import checkpoint_recopy_hw
from repro.core.quiesce import resume
from repro.cpu.criu import CriuEngine
from repro.gpu.context import GpuContext
from repro.sim import Engine
from repro.units import MIB

from tests.toyapp import ToyApp, image_gpu_state, snapshot_process


def make_world(buf_size=64 * MIB):
    eng = Engine()
    machine = Machine(eng, n_gpus=1)
    criu = CriuEngine(eng)
    process = GpuProcess(eng, machine, name="app", gpu_indices=[0], cpu_pages=8)
    process.runtime.adopt_context(0, GpuContext(gpu_index=0))
    app = ToyApp(process, buf_size=buf_size, kernel_flops=1e9)
    return eng, machine, criu, process, app


def test_hw_dirty_bits_set_by_all_write_paths():
    eng, machine, criu, process, app = make_world(buf_size=4096)

    def driver(eng):
        yield from app.setup()
        for buf in app.bufs.values():
            buf.hw_dirty = False
        yield from app.run(1)

    eng.run_process(driver(eng))
    # The iteration writes act (kernel), grad (lib), out (kernel),
    # weight (kernel), input (memcpy) — all must be marked.
    for name in ("act", "grad", "out", "weight", "input"):
        assert app.bufs[name].hw_dirty, name
    # idx is read-only in the loop.
    assert not app.bufs["idx"].hw_dirty


def test_hw_recopy_image_equals_t2_state():
    eng, machine, criu, process, app = make_world()
    state = {}

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        handle = eng.spawn(checkpoint_recopy_hw(
            eng, process, machine.dram, criu, keep_stopped=True,
        ))
        runner = eng.spawn(app.run(8, start=2))
        image, recopied = yield handle
        state["gpu"], _ = snapshot_process(process)
        resume([process])
        yield runner
        return image, recopied

    image, recopied = eng.run_process(driver(eng))
    eng.run()
    got = image_gpu_state(image)
    assert set(got) == set(state["gpu"])
    for key in state["gpu"]:
        assert got[key] == state["gpu"][key]


def test_hw_recopy_needs_no_frontend():
    """The hypothetical hardware path runs without any PHOS attachment
    (no speculation, no twins) — §9's simplification claim."""
    eng, machine, criu, process, app = make_world()
    assert process.runtime.interceptor is None

    def driver(eng):
        yield from app.setup()
        image, recopied = yield from checkpoint_recopy_hw(
            eng, process, machine.dram, criu
        )
        return image, recopied

    image, recopied = eng.run_process(driver(eng))
    assert image.finalized


def test_hw_and_soft_recopy_agree_on_dirty_volume():
    """Hardware bits and validated speculation must identify dirty sets
    of the same scale for the same workload window."""
    from repro.core.daemon import Phos

    def soft():
        eng, machine, criu, process, app = make_world()
        phos = Phos(eng, machine, use_context_pool=False)
        phos.attach(process)

        def driver(eng):
            yield from app.setup()
            yield from app.run(2)
            handle = phos.checkpoint(process, mode="recopy", keep_stopped=True)
            runner = eng.spawn(app.run(8, start=2))
            image, session = yield handle
            resume([process])
            yield runner
            return session.stats.bytes_recopied

        result = eng.run_process(driver(eng))
        eng.run()
        return result

    def hw():
        eng, machine, criu, process, app = make_world()

        def driver(eng):
            yield from app.setup()
            yield from app.run(2)
            handle = eng.spawn(checkpoint_recopy_hw(
                eng, process, machine.dram, criu, keep_stopped=True,
            ))
            runner = eng.spawn(app.run(8, start=2))
            image, recopied = yield handle
            resume([process])
            yield runner
            return recopied

        result = eng.run_process(driver(eng))
        eng.run()
        return result

    soft_bytes, hw_bytes = soft(), hw()
    assert hw_bytes > 0
    # Speculation is buffer-granular and over-approximate; hardware bits
    # are exact.  They may differ, but not by orders of magnitude.
    assert 0.3 <= (soft_bytes / hw_bytes) <= 3.0
