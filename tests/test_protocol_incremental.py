"""Integration tests: incremental CoW checkpoints (parent images)."""

from repro.api.runtime import GpuProcess
from repro.cluster import Machine
from repro.core.daemon import Phos
from repro.core.quiesce import quiesce
from repro.gpu.context import GpuContext
from repro.gpu.cost_model import KernelCost
from repro.gpu.program import build_fill
from repro.sim import Engine
from repro.units import MIB

from tests.toyapp import ToyApp, image_gpu_state, snapshot_process


def make_world(buf_size=4096):
    eng = Engine()
    machine = Machine(eng, n_gpus=1)
    phos = Phos(eng, machine, use_context_pool=False)
    process = GpuProcess(eng, machine, name="app", gpu_indices=[0], cpu_pages=8)
    process.runtime.adopt_context(0, GpuContext(gpu_index=0))
    phos.attach(process)
    app = ToyApp(process, buf_size=buf_size)
    return eng, machine, phos, process, app


def test_incremental_image_equals_full_image():
    """The child image is byte-identical to a from-scratch checkpoint."""
    eng, machine, phos, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        parent, s0 = yield phos.checkpoint(process, mode="cow", name="base")
        yield from app.run(3, start=2)
        # Quiesce so both checkpoints capture the same t1.
        yield from quiesce(eng, [process])
        expected, _ = snapshot_process(process)
        child, s1 = yield phos.checkpoint(process, mode="cow", name="inc",
                                          parent=parent)
        return expected, child, s1

    expected, child, session = eng.run_process(driver(eng))
    eng.run()
    assert not session.aborted
    assert image_gpu_state(child) == expected


def test_incremental_skips_unwritten_buffers():
    """The never-written `idx` buffer inherits the parent record."""
    eng, machine, phos, process, app = make_world(buf_size=64 * MIB)

    def driver(eng):
        yield from app.setup()
        yield from app.run(1)
        parent, _ = yield phos.checkpoint(process, mode="cow")
        yield from app.run(2, start=1)
        child, session = yield phos.checkpoint(process, mode="cow",
                                               parent=parent)
        return parent, child, session

    parent, child, session = eng.run_process(driver(eng))
    eng.run()
    assert session.stats.bytes_skipped_incremental > 0
    # Inherited records are shared with the parent (no data duplication).
    idx_parent = next(r for r in parent.gpu_buffers[0].values()
                      if r.tag == "idx")
    idx_child = next(r for r in child.gpu_buffers[0].values()
                     if r.tag == "idx")
    assert idx_child is idx_parent


def test_incremental_faster_than_full():
    eng, machine, phos, process, app = make_world(buf_size=128 * MIB)

    def driver(eng):
        yield from app.setup()
        yield from app.run(1)
        t0 = eng.now
        parent, _ = yield phos.checkpoint(process, mode="cow")
        full_time = eng.now - t0
        # Touch only one buffer before the incremental checkpoint.
        yield from process.runtime.launch_kernel(
            0, build_fill(), [app.bufs["act"].addr, 4, 5], 4,
            cost=KernelCost(flops=1e9), sync=True,
        )
        t1 = eng.now
        child, session = yield phos.checkpoint(process, mode="cow",
                                               parent=parent)
        inc_time = eng.now - t1
        return full_time, inc_time, session

    full_time, inc_time, session = eng.run_process(driver(eng))
    eng.run()
    assert inc_time < 0.6 * full_time
    assert session.stats.bytes_skipped_incremental > 0


def test_written_buffers_are_recaptured():
    eng, machine, phos, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        parent, _ = yield phos.checkpoint(process, mode="cow")
        # Write `act` with new content via the API.
        yield from process.runtime.memcpy_h2d(0, app.bufs["act"], payload=77,
                                              sync=True)
        child, session = yield phos.checkpoint(process, mode="cow",
                                               parent=parent)
        return parent, child

    parent, child = eng.run_process(driver(eng))
    eng.run()
    act_parent = next(r for r in parent.gpu_buffers[0].values()
                      if r.tag == "act")
    act_child = next(r for r in child.gpu_buffers[0].values()
                     if r.tag == "act")
    assert act_child is not act_parent
    assert act_child.data != act_parent.data
    assert act_child.data[:8] == (77).to_bytes(8, "little")


def test_layout_change_falls_back_to_full_copy():
    eng, machine, phos, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        parent, _ = yield phos.checkpoint(process, mode="cow")
        # Replace a buffer: same tag, different allocation.
        old = app.bufs.pop("out")
        yield from process.runtime.free(0, old)
        app.bufs["out"] = yield from process.runtime.malloc(0, 8192, tag="out")
        yield from process.runtime.memcpy_h2d(0, app.bufs["out"], payload=3,
                                              sync=True)
        child, session = yield phos.checkpoint(process, mode="cow",
                                               parent=parent)
        yield from quiesce(eng, [process])
        expected, _ = snapshot_process(process)
        return expected, child

    expected, child = eng.run_process(driver(eng))
    eng.run()
    assert image_gpu_state(child) == expected


def test_chain_of_incrementals_stays_correct():
    eng, machine, phos, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        image, _ = yield phos.checkpoint(process, mode="cow")
        for i in range(3):
            yield from app.run(1, start=i)
            image, session = yield phos.checkpoint(process, mode="cow",
                                                   parent=image)
            assert not session.aborted
        yield from quiesce(eng, [process])
        expected, _ = snapshot_process(process)
        return expected, image

    expected, image = eng.run_process(driver(eng))
    eng.run()
    assert image_gpu_state(image) == expected
