"""Unit tests for the ISA, builder, and program validation."""

import pytest

from repro.errors import IsaError
from repro.gpu.isa import Instr, Op, Program, ProgramBuilder
from repro.gpu.program import (
    STANDARD_BUILDERS,
    build_copy,
    build_global_writer,
    build_reduce_sum,
)


def test_builder_produces_valid_program():
    prog = build_copy()
    assert prog.name == "dev_copy"
    assert prog.instrs[-1].op is Op.EXIT
    assert not prog.instrumented


def test_program_requires_exit():
    with pytest.raises(IsaError):
        Program(name="bad", decl="void bad()", instrs=[Instr(op=Op.SETI, rd=0, imm=1)])


def test_program_requires_instructions():
    with pytest.raises(IsaError):
        Program(name="empty", decl="void empty()", instrs=[])


def test_undefined_label_rejected():
    b = ProgramBuilder("jumpy", "void jumpy()")
    b.jmp("nowhere").exit()
    with pytest.raises(IsaError):
        b.build()


def test_duplicate_label_rejected():
    b = ProgramBuilder("dup", "void dup()")
    b.label("x")
    with pytest.raises(IsaError):
        b.label("x")


def test_register_range_validated():
    with pytest.raises(IsaError):
        Instr(op=Op.SETI, rd=32, imm=0)
    with pytest.raises(IsaError):
        Instr(op=Op.ADD, rd=0, ra=0, rb=-1)


def test_undefined_global_rejected():
    b = ProgramBuilder("g", "void g()")
    b.glob(0, "missing").exit()
    with pytest.raises(IsaError):
        b.build()


def test_global_writer_declares_global():
    prog = build_global_writer("gw", "hidden", 0x1000)
    assert prog.uses_globals
    assert prog.globals_["hidden"] == 0x1000


def test_store_count():
    assert build_copy().store_count == 1
    assert build_reduce_sum().store_count == 1


def test_standard_builders_all_assemble():
    for name, builder in STANDARD_BUILDERS.items():
        prog = builder()
        assert prog.instrs[-1].op is Op.EXIT, name


def test_labels_resolve_to_positions():
    prog = build_copy()
    assert prog.labels["end"] == len(prog.instrs) - 1
