"""Unit tests for the discrete-event engine core."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Engine
from repro.sim.engine import Interrupt


@pytest.fixture
def eng():
    return Engine()


def test_clock_starts_at_zero(eng):
    assert eng.now == 0.0


def test_timeout_advances_clock(eng):
    def proc(eng):
        yield eng.timeout(2.5)
        return eng.now

    assert eng.run_process(proc(eng)) == 2.5
    assert eng.now == 2.5


def test_timeout_carries_value(eng):
    def proc(eng):
        got = yield eng.timeout(1.0, value="payload")
        return got

    assert eng.run_process(proc(eng)) == "payload"


def test_negative_timeout_rejected(eng):
    with pytest.raises(SimulationError):
        eng.timeout(-1.0)


def test_process_return_value(eng):
    def proc(eng):
        yield eng.timeout(0)
        return 42

    p = eng.spawn(proc(eng))
    eng.run()
    assert p.result == 42


def test_spawn_requires_generator(eng):
    with pytest.raises(SimulationError):
        eng.spawn(lambda: None)  # type: ignore[arg-type]


def test_processes_interleave_deterministically(eng):
    order = []

    def worker(eng, name, delay):
        yield eng.timeout(delay)
        order.append(name)

    eng.spawn(worker(eng, "b", 2.0))
    eng.spawn(worker(eng, "a", 1.0))
    eng.spawn(worker(eng, "c", 2.0))
    eng.run()
    assert order == ["a", "b", "c"]  # ties broken by spawn order


def test_same_time_fifo(eng):
    order = []

    def worker(eng, name):
        yield eng.timeout(1.0)
        order.append(name)

    for name in "xyz":
        eng.spawn(worker(eng, name))
    eng.run()
    assert order == ["x", "y", "z"]


def test_wait_on_another_process(eng):
    def child(eng):
        yield eng.timeout(3.0)
        return "child-result"

    def parent(eng):
        c = eng.spawn(child(eng))
        got = yield c
        return (got, eng.now)

    assert eng.run_process(parent(eng)) == ("child-result", 3.0)


def test_wait_on_finished_process(eng):
    def child(eng):
        yield eng.timeout(1.0)
        return 7

    def parent(eng):
        c = eng.spawn(child(eng))
        yield eng.timeout(5.0)
        got = yield c  # already finished: resumes immediately
        return (got, eng.now)

    assert eng.run_process(parent(eng)) == (7, 5.0)


def test_exception_propagates_through_wait(eng):
    def child(eng):
        yield eng.timeout(1.0)
        raise ValueError("boom")

    def parent(eng):
        try:
            yield eng.spawn(child(eng))
        except ValueError as err:
            return str(err)
        return "no error"

    assert eng.run_process(parent(eng)) == "boom"


def test_unhandled_exception_raises_from_run(eng):
    def child(eng):
        yield eng.timeout(1.0)
        raise RuntimeError("unhandled")

    with pytest.raises(RuntimeError, match="unhandled"):
        eng.run_process(child(eng))


def test_run_until_deadline(eng):
    hits = []

    def ticker(eng):
        while True:
            yield eng.timeout(1.0)
            hits.append(eng.now)

    eng.spawn(ticker(eng))
    eng.run(until=3.5)
    assert hits == [1.0, 2.0, 3.0]
    assert eng.now == 3.5


def test_run_until_past_deadline_rejected(eng):
    def proc(eng):
        yield eng.timeout(5.0)

    eng.run_process(proc(eng))
    with pytest.raises(SimulationError):
        eng.run(until=1.0)


def test_deadlock_detection(eng):
    def waiter(eng):
        yield eng.event("never")

    with pytest.raises(DeadlockError):
        eng.run_process(waiter(eng))


def test_interrupt_mid_wait(eng):
    def victim(eng):
        try:
            yield eng.timeout(100.0)
        except Interrupt:
            return ("interrupted", eng.now)
        return "not interrupted"

    def attacker(eng, victim_proc):
        yield eng.timeout(2.0)
        victim_proc.interrupt()

    v = eng.spawn(victim(eng))
    eng.spawn(attacker(eng, v))
    eng.run()
    assert v.result == ("interrupted", 2.0)


def test_interrupt_finished_process_rejected(eng):
    def quick(eng):
        yield eng.timeout(0)

    p = eng.spawn(quick(eng))
    eng.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_yield_non_event_fails_process(eng):
    def bad(eng):
        yield 42  # type: ignore[misc]

    with pytest.raises(SimulationError):
        eng.run_process(bad(eng))


def test_event_fire_twice_rejected(eng):
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_value_before_fire_rejected(eng):
    ev = eng.event("pending")
    with pytest.raises(SimulationError):
        _ = ev.value


def test_all_of_collects_values_in_order(eng):
    def proc(eng):
        evs = [eng.timeout(2.0, "b"), eng.timeout(1.0, "a")]
        vals = yield eng.all_of(evs)
        return (vals, eng.now)

    assert eng.run_process(proc(eng)) == (["b", "a"], 2.0)


def test_all_of_empty_fires_immediately(eng):
    def proc(eng):
        vals = yield eng.all_of([])
        return (vals, eng.now)

    assert eng.run_process(proc(eng)) == ([], 0.0)


def test_any_of_returns_first(eng):
    def proc(eng):
        evs = [eng.timeout(5.0, "slow"), eng.timeout(1.0, "fast")]
        idx, val = yield eng.any_of(evs)
        return (idx, val, eng.now)

    assert eng.run_process(proc(eng)) == (1, "fast", 1.0)


def test_all_of_with_pre_fired_events(eng):
    ev = eng.event()
    ev.succeed("already")

    def proc(eng):
        vals = yield eng.all_of([ev, eng.timeout(1.0, "later")])
        return vals

    assert eng.run_process(proc(eng)) == ["already", "later"]


def test_schedule_in_past_rejected(eng):
    def proc(eng):
        yield eng.timeout(5.0)

    eng.run_process(proc(eng))
    with pytest.raises(SimulationError):
        eng._schedule_at(1.0, lambda: None)


def test_schedule_nan_rejected(eng):
    with pytest.raises(SimulationError):
        eng._schedule_at(float("nan"), lambda: None)


# -- interrupt edge cases under record dispatch -----------------------------------

def test_stale_wakeup_after_interrupt_retarget(eng):
    """An interrupt re-targets the victim onto a new wait; the *old*
    event still fires later and its queued wakeup must be dropped."""
    ev_a = eng.event("a")

    def victim(eng):
        try:
            yield ev_a
        except Interrupt:
            pass
        got = yield eng.timeout(1.0, "fresh")  # the re-targeted wait
        return (got, eng.now)

    def attacker(eng, v):
        yield eng.timeout(0.5)
        v.interrupt()
        yield eng.timeout(0.1)
        ev_a.succeed("stale")  # victim is long since waiting elsewhere

    v = eng.spawn(victim(eng))
    eng.spawn(attacker(eng, v))
    eng.run()
    assert v.result == ("fresh", 1.5)


def test_stale_wakeup_after_victim_finished(eng):
    """The victim finishes on interrupt; the old event's queued wakeup
    then targets a *fired* process and must be a no-op."""
    ev_a = eng.event("a")

    def victim(eng):
        try:
            yield ev_a
        except Interrupt:
            return ("done", eng.now)

    def attacker(eng, v):
        yield eng.timeout(1.0)
        v.interrupt()
        yield eng.timeout(0.0)
        ev_a.succeed("too-late")

    v = eng.spawn(victim(eng))
    eng.spawn(attacker(eng, v))
    eng.run()
    assert v.result == ("done", 1.0)


def test_interrupt_when_event_fires_same_timestamp(eng):
    """FIFO within a timestamp: the victim's timeout fired (and its
    wakeup was queued) before the attacker ran, so the value is
    delivered normally and the interrupt lands on the *next* wait —
    all within one scheduler timestamp."""
    def victim(eng):
        got = yield eng.timeout(2.0, "on-time")
        try:
            yield eng.timeout(50.0)
        except Interrupt:
            return (got, "interrupted-next", eng.now)
        return (got, "never-interrupted", eng.now)

    def attacker(eng, v):
        yield eng.timeout(2.0)  # the same instant the victim's fires
        v.interrupt()

    v = eng.spawn(victim(eng))
    eng.spawn(attacker(eng, v))
    eng.run()
    assert v.result == ("on-time", "interrupted-next", 2.0)


def test_interrupt_then_stop_iteration_wakes_waiters_in_order(eng):
    """Interrupt → generator returns → the process event fires; every
    waiter resumes at the interrupt timestamp, in registration order."""
    order = []

    def victim(eng):
        try:
            yield eng.timeout(100.0)
        except Interrupt:
            return "stopped"

    def watcher(eng, v, name):
        got = yield v
        order.append((name, eng.now, got))

    v = eng.spawn(victim(eng))
    eng.spawn(watcher(eng, v, "w1"))
    eng.spawn(watcher(eng, v, "w2"))

    def attacker(eng):
        yield eng.timeout(3.0)
        v.interrupt()

    eng.spawn(attacker(eng))
    eng.run()
    assert v.result == "stopped"
    assert order == [("w1", 3.0, "stopped"), ("w2", 3.0, "stopped")]


def test_interrupt_with_custom_exception(eng):
    class Abort(Exception):
        pass

    def victim(eng):
        try:
            yield eng.timeout(10.0)
        except Abort:
            return "aborted"

    def attacker(eng, v):
        yield eng.timeout(1.0)
        v.interrupt(Abort())

    v = eng.spawn(victim(eng))
    eng.spawn(attacker(eng, v))
    eng.run()
    assert v.result == "aborted"


# -- executed vs scheduled accounting ---------------------------------------------

def test_events_executed_excludes_never_fired(eng):
    """A deadline run leaves scheduled-but-unfired records behind;
    events_executed must not count them (the bench's events/s
    denominator is this number)."""
    def ticker(eng):
        while True:
            yield eng.timeout(1.0)

    eng.spawn(ticker(eng))
    eng.run(until=2.5)
    assert eng.events_executed < eng.events_scheduled
    assert eng.events_pending >= 1
    assert (eng.events_executed + eng.events_pending
            == eng.events_scheduled)


def test_events_executed_equals_scheduled_when_drained(eng):
    def proc(eng):
        yield eng.timeout(1.0)
        yield eng.timeout(1.0)

    eng.run_process(proc(eng))
    assert eng.events_executed == eng.events_scheduled
    assert eng.events_pending == 0


# -- legacy heap reference mode ---------------------------------------------------

@pytest.mark.parametrize("how", ["arg", "env"])
def test_legacy_heap_mode_matches(how, monkeypatch):
    if how == "env":
        monkeypatch.setenv("REPRO_LEGACY_HEAP", "1")
        eng = Engine()
    else:
        eng = Engine(legacy_heap=True)
    order = []

    def worker(eng, name, delay):
        yield eng.timeout(delay)
        order.append((name, eng.now))

    eng.spawn(worker(eng, "b", 2.0))
    eng.spawn(worker(eng, "a", 1.0))
    eng.spawn(worker(eng, "c", 2.0))
    eng.run()
    assert order == [("a", 1.0), ("b", 2.0), ("c", 2.0)]
    assert eng.events_executed == eng.events_scheduled


def test_nested_spawn_depth(eng):
    def leaf(eng):
        yield eng.timeout(1.0)
        return 1

    def middle(eng):
        got = yield eng.spawn(leaf(eng))
        return got + 1

    def root(eng):
        got = yield eng.spawn(middle(eng))
        return got + 1

    assert eng.run_process(root(eng)) == 3
