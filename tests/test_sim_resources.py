"""Unit tests for Resource, PriorityResource, and Store."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, PriorityResource, Resource, Store


@pytest.fixture
def eng():
    return Engine()


def hold(eng, res, log, name, work, priority=0):
    """A process that acquires, works, and releases."""
    req = yield res.acquire(priority=priority)
    log.append(("start", name, eng.now))
    yield eng.timeout(work)
    res.release(req)
    log.append(("end", name, eng.now))


def test_single_slot_serializes(eng):
    res = Resource(eng, capacity=1)
    log = []
    eng.spawn(hold(eng, res, log, "a", 2.0))
    eng.spawn(hold(eng, res, log, "b", 3.0))
    eng.run()
    assert log == [
        ("start", "a", 0.0),
        ("end", "a", 2.0),
        ("start", "b", 2.0),
        ("end", "b", 5.0),
    ]


def test_two_slots_run_in_parallel(eng):
    res = Resource(eng, capacity=2)
    log = []
    for name in ("a", "b", "c"):
        eng.spawn(hold(eng, res, log, name, 2.0))
    eng.run()
    starts = {name: t for kind, name, t in log if kind == "start"}
    assert starts == {"a": 0.0, "b": 0.0, "c": 2.0}


def test_fifo_ordering(eng):
    res = Resource(eng, capacity=1)
    log = []
    for name in ("a", "b", "c", "d"):
        eng.spawn(hold(eng, res, log, name, 1.0))
    eng.run()
    started = [name for kind, name, _ in log if kind == "start"]
    assert started == ["a", "b", "c", "d"]


def test_capacity_validation(eng):
    with pytest.raises(SimulationError):
        Resource(eng, capacity=0)


def test_double_release_rejected(eng):
    res = Resource(eng, capacity=1)

    def proc(eng):
        req = yield res.acquire()
        res.release(req)
        res.release(req)

    with pytest.raises(SimulationError):
        eng.run_process(proc(eng))


def test_in_use_and_queue_len(eng):
    res = Resource(eng, capacity=1)
    snapshots = []

    def holder(eng):
        req = yield res.acquire()
        yield eng.timeout(2.0)
        res.release(req)

    def observer(eng):
        yield eng.timeout(1.0)
        snapshots.append((res.in_use, res.queue_len, res.busy))

    eng.spawn(holder(eng))
    eng.spawn(holder(eng))
    eng.spawn(observer(eng))
    eng.run()
    assert snapshots == [(1, 1, True)]
    assert res.in_use == 0 and res.queue_len == 0


def test_priority_resource_orders_by_priority(eng):
    res = PriorityResource(eng, capacity=1)
    log = []

    def submit(eng):
        # Occupy the slot, then submit low/high priority waiters.
        req = yield res.acquire()
        eng.spawn(hold(eng, res, log, "low", 1.0, priority=10))
        eng.spawn(hold(eng, res, log, "high", 1.0, priority=0))
        yield eng.timeout(1.0)
        res.release(req)

    eng.run_process(submit(eng))
    eng.run()
    started = [name for kind, name, _ in log if kind == "start"]
    assert started == ["high", "low"]


def test_priority_ties_are_fifo(eng):
    res = PriorityResource(eng, capacity=1)
    log = []

    def submit(eng):
        req = yield res.acquire()
        for name in ("first", "second", "third"):
            eng.spawn(hold(eng, res, log, name, 1.0, priority=5))
        yield eng.timeout(1.0)
        res.release(req)

    eng.run_process(submit(eng))
    eng.run()
    started = [name for kind, name, _ in log if kind == "start"]
    assert started == ["first", "second", "third"]


def test_store_put_then_get(eng):
    store = Store(eng)
    store.put("x")

    def getter(eng):
        item = yield store.get()
        return item

    assert eng.run_process(getter(eng)) == "x"


def test_store_get_blocks_until_put(eng):
    store = Store(eng)

    def getter(eng):
        item = yield store.get()
        return (item, eng.now)

    def putter(eng):
        yield eng.timeout(3.0)
        store.put("late")

    g = eng.spawn(getter(eng))
    eng.spawn(putter(eng))
    eng.run()
    assert g.result == ("late", 3.0)


def test_store_fifo_order(eng):
    store = Store(eng)
    got = []

    def getter(eng):
        item = yield store.get()
        got.append(item)

    eng.spawn(getter(eng))
    eng.spawn(getter(eng))

    def putter(eng):
        yield eng.timeout(1.0)
        store.put(1)
        store.put(2)

    eng.spawn(putter(eng))
    eng.run()
    assert got == [1, 2]


def test_store_len(eng):
    store = Store(eng)
    store.put("a")
    store.put("b")
    assert len(store) == 2
