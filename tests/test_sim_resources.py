"""Unit tests for Resource, PriorityResource, and Store."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, PriorityResource, Resource, Store


@pytest.fixture
def eng():
    return Engine()


def hold(eng, res, log, name, work, priority=0):
    """A process that acquires, works, and releases."""
    req = yield res.acquire(priority=priority)
    log.append(("start", name, eng.now))
    yield eng.timeout(work)
    res.release(req)
    log.append(("end", name, eng.now))


def test_single_slot_serializes(eng):
    res = Resource(eng, capacity=1)
    log = []
    eng.spawn(hold(eng, res, log, "a", 2.0))
    eng.spawn(hold(eng, res, log, "b", 3.0))
    eng.run()
    assert log == [
        ("start", "a", 0.0),
        ("end", "a", 2.0),
        ("start", "b", 2.0),
        ("end", "b", 5.0),
    ]


def test_two_slots_run_in_parallel(eng):
    res = Resource(eng, capacity=2)
    log = []
    for name in ("a", "b", "c"):
        eng.spawn(hold(eng, res, log, name, 2.0))
    eng.run()
    starts = {name: t for kind, name, t in log if kind == "start"}
    assert starts == {"a": 0.0, "b": 0.0, "c": 2.0}


def test_fifo_ordering(eng):
    res = Resource(eng, capacity=1)
    log = []
    for name in ("a", "b", "c", "d"):
        eng.spawn(hold(eng, res, log, name, 1.0))
    eng.run()
    started = [name for kind, name, _ in log if kind == "start"]
    assert started == ["a", "b", "c", "d"]


def test_capacity_validation(eng):
    with pytest.raises(SimulationError):
        Resource(eng, capacity=0)


def test_double_release_rejected(eng):
    res = Resource(eng, capacity=1)

    def proc(eng):
        req = yield res.acquire()
        res.release(req)
        res.release(req)

    with pytest.raises(SimulationError):
        eng.run_process(proc(eng))


def test_in_use_and_queue_len(eng):
    res = Resource(eng, capacity=1)
    snapshots = []

    def holder(eng):
        req = yield res.acquire()
        yield eng.timeout(2.0)
        res.release(req)

    def observer(eng):
        yield eng.timeout(1.0)
        snapshots.append((res.in_use, res.queue_len, res.busy))

    eng.spawn(holder(eng))
    eng.spawn(holder(eng))
    eng.spawn(observer(eng))
    eng.run()
    assert snapshots == [(1, 1, True)]
    assert res.in_use == 0 and res.queue_len == 0


def test_priority_resource_orders_by_priority(eng):
    res = PriorityResource(eng, capacity=1)
    log = []

    def submit(eng):
        # Occupy the slot, then submit low/high priority waiters.
        req = yield res.acquire()
        eng.spawn(hold(eng, res, log, "low", 1.0, priority=10))
        eng.spawn(hold(eng, res, log, "high", 1.0, priority=0))
        yield eng.timeout(1.0)
        res.release(req)

    eng.run_process(submit(eng))
    eng.run()
    started = [name for kind, name, _ in log if kind == "start"]
    assert started == ["high", "low"]


def test_priority_ties_are_fifo(eng):
    res = PriorityResource(eng, capacity=1)
    log = []

    def submit(eng):
        req = yield res.acquire()
        for name in ("first", "second", "third"):
            eng.spawn(hold(eng, res, log, name, 1.0, priority=5))
        yield eng.timeout(1.0)
        res.release(req)

    eng.run_process(submit(eng))
    eng.run()
    started = [name for kind, name, _ in log if kind == "start"]
    assert started == ["first", "second", "third"]


# --- release / cancellation contract (regression tests) ----------------------


def test_priority_release_of_foreign_request_raises(eng):
    """Regression: PriorityResource.release silently accepted requests
    it had never seen, so a cross-resource release bug went unnoticed
    (and re-ran the grant loop on the wrong pool)."""
    res_a = PriorityResource(eng, capacity=1, name="a")
    res_b = PriorityResource(eng, capacity=1, name="b")

    def proc(eng):
        req = yield res_a.acquire()
        res_b.release(req)

    with pytest.raises(SimulationError, match="unknown request"):
        eng.run_process(proc(eng))


def test_fifo_release_of_foreign_request_raises(eng):
    res_a = Resource(eng, capacity=1, name="a")
    res_b = Resource(eng, capacity=1, name="b")

    def proc(eng):
        req = yield res_a.acquire()
        res_b.release(req)

    with pytest.raises(SimulationError, match="unknown request"):
        eng.run_process(proc(eng))


def test_cancel_waiting_request_withdraws_it(eng):
    """Releasing a not-yet-granted request cancels it: the slot later
    goes to the next live waiter, never to the cancelled one."""
    res = PriorityResource(eng, capacity=1)
    order = []

    def holder(eng):
        req = yield res.acquire()
        yield eng.timeout(2.0)
        res.release(req)

    def canceller(eng):
        req = res.acquire(priority=0)  # front of the queue
        yield eng.timeout(1.0)
        res.release(req)  # withdraw before being granted

    def waiter(eng):
        req = yield res.acquire(priority=10)
        order.append(eng.now)
        res.release(req)

    eng.spawn(holder(eng))
    eng.spawn(canceller(eng))
    eng.spawn(waiter(eng))
    eng.run()
    # Were the cancelled request granted, the slot would leak and the
    # low-priority waiter would never start.
    assert order == [2.0]


def test_cancelled_waiter_double_release_raises(eng):
    res = PriorityResource(eng, capacity=1)

    def proc(eng):
        held = yield res.acquire()
        waiting = res.acquire(priority=5)
        res.release(waiting)
        res.release(waiting)
        res.release(held)  # unreached

    with pytest.raises(SimulationError, match="double release"):
        eng.run_process(proc(eng))


def test_priority_queue_len_skips_cancelled_entries(eng):
    """Lazy deletion keeps cancelled entries in the heap; queue_len and
    iter_waiting must not count them."""
    res = PriorityResource(eng, capacity=1)

    def proc(eng):
        held = yield res.acquire()
        w1 = res.acquire(priority=5)
        w2 = res.acquire(priority=5)
        assert res.queue_len == 2
        res.release(w1)
        assert res.queue_len == 1
        assert list(res.iter_waiting()) == [w2]
        res.release(held)
        res.release(w2)  # granted synchronously when held was released
        assert res.queue_len == 0 and res.in_use == 0
        yield eng.timeout(0.0)

    eng.run_process(proc(eng))


def test_iter_users_and_iter_waiting_snapshots(eng):
    res = Resource(eng, capacity=1)
    seen = []

    def holder(eng):
        req = yield res.acquire()
        yield eng.timeout(1.0)
        res.release(req)

    def waiter(eng):
        req = yield res.acquire()
        res.release(req)

    def observer(eng):
        yield eng.timeout(0.5)
        seen.append((list(res.iter_users()), list(res.iter_waiting())))

    eng.spawn(holder(eng))
    eng.spawn(waiter(eng))
    eng.spawn(observer(eng))
    eng.run()
    (users, waiting), = seen
    assert len(users) == 1 and len(waiting) == 1
    assert users[0].resource is res and waiting[0].resource is res


def test_store_put_then_get(eng):
    store = Store(eng)
    store.put("x")

    def getter(eng):
        item = yield store.get()
        return item

    assert eng.run_process(getter(eng)) == "x"


def test_store_get_blocks_until_put(eng):
    store = Store(eng)

    def getter(eng):
        item = yield store.get()
        return (item, eng.now)

    def putter(eng):
        yield eng.timeout(3.0)
        store.put("late")

    g = eng.spawn(getter(eng))
    eng.spawn(putter(eng))
    eng.run()
    assert g.result == ("late", 3.0)


def test_store_fifo_order(eng):
    store = Store(eng)
    got = []

    def getter(eng):
        item = yield store.get()
        got.append(item)

    eng.spawn(getter(eng))
    eng.spawn(getter(eng))

    def putter(eng):
        yield eng.timeout(1.0)
        store.put(1)
        store.put(2)

    eng.spawn(putter(eng))
    eng.run()
    assert got == [1, 2]


def test_store_len(eng):
    store = Store(eng)
    store.put("a")
    store.put("b")
    assert len(store) == 2
