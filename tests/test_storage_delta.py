"""Delta checkpoint images: chunking, chains, format v2, chaos.

Covers the storage tentpole end to end: content-addressed chunk
tables, :func:`seal_delta`/:func:`materialize` round trips, chain
walking with cycle/missing-parent detection, the catalog's delta
commit/revocation rules, the v2 on-disk format, and the acceptance
criterion that a delta-chain restore is bit-identical to the
equivalent full-image restore on fig16's workload.  CI re-runs this
file with ``REPRO_NO_FASTPATH=1`` (the ``image-format`` job), covering
the fast-path-off half of the matrix.
"""

import pytest

from repro import chaos
from repro.api.runtime import GpuProcess
from repro.chaos import FaultPlan, FaultSpec
from repro.cluster import Machine
from repro.core.daemon import Phos
from repro.core.quiesce import quiesce
from repro.core.sdk import PhosSdk
from repro.errors import CheckpointError, TornImageError
from repro.gpu.context import GpuContext
from repro.sim import Engine
from repro.storage.delta import (
    CHUNK_BYTES,
    DeltaImage,
    chunk_count,
    chunk_hashes,
    hash_chunk,
    materialize,
    seal_delta,
)
from repro.storage.image import CheckpointImage, GpuBufferRecord, ImageCatalog
from repro.storage.serial import load_image, save_image

from tests.toyapp import ToyApp, image_gpu_state, snapshot_process


@pytest.fixture(autouse=True)
def _chaos_clean():
    chaos.uninstall()
    yield
    chaos.uninstall()


def make_world(buf_size=4096):
    eng = Engine()
    machine = Machine(eng, n_gpus=1)
    phos = Phos(eng, machine, use_context_pool=False)
    process = GpuProcess(eng, machine, name="app", gpu_indices=[0],
                         cpu_pages=8)
    process.runtime.adopt_context(0, GpuContext(gpu_index=0))
    phos.attach(process)
    app = ToyApp(process, buf_size=buf_size)
    return eng, machine, phos, process, app


# -- chunk primitives ---------------------------------------------------------------

def test_chunk_math():
    assert chunk_count(0, 256) == 0
    assert chunk_count(1, 256) == 1
    assert chunk_count(256, 256) == 1
    assert chunk_count(257, 256) == 2
    data = bytes(range(256)) * 3  # 768 bytes -> 3 chunks
    hashes = chunk_hashes(data, 256)
    assert len(hashes) == 3
    assert hashes[0] == hashes[1] == hashes[2] == hash_chunk(data[:256])
    assert chunk_hashes(b"", 256) == []


def test_chunk_hash_is_content_addressed():
    a, b = b"x" * 256, b"y" * 256
    assert hash_chunk(a) == hash_chunk(bytes(a))
    assert hash_chunk(a) != hash_chunk(b)


# -- seal + materialize (unit level) ------------------------------------------------

def _full_image(name="base", payloads=(b"a" * 512, b"b" * 512)):
    img = CheckpointImage(name=name)
    for i, data in enumerate(payloads):
        img.add_gpu_buffer(0, GpuBufferRecord(
            buffer_id=i, addr=0x1000 * (i + 1), size=4096, data=data,
            tag=f"buf{i}"))
    img.add_cpu_page(0, b"p" * 64)
    img.context_meta = {"cpu_pages": 1}
    img.finalize(1.0)
    return img


def _delta_on(parent, changed: bytes, name="child"):
    """A delta that recaptures buffer 0 with ``changed`` payload and
    reuses buffer 1 untouched."""
    delta = DeltaImage(name=name, parent_id=parent.id,
                       parent_name=parent.name, parent_ref=parent)
    delta.add_gpu_buffer(0, GpuBufferRecord(
        buffer_id=0, addr=0x1000, size=4096, data=changed, tag="buf0"))
    delta.add_cpu_page(0, b"p" * 64)  # unchanged -> dropped at seal
    delta.context_meta = {"cpu_pages": 1}
    seal_delta(delta, parent, reused={0: {1}})
    delta.finalize(2.0)
    return delta


def test_seal_stores_only_changed_chunks():
    parent = _full_image()
    changed = b"a" * 256 + b"Z" * 256  # second chunk differs
    delta = _delta_on(parent, changed)
    rec = delta.delta_gpu[0][0]
    assert list(rec.chunks) == [1]
    assert rec.chunks[1] == b"Z" * 256
    assert len(rec.hashes) == 2
    # The reused buffer carries hashes but no local chunks.
    assert delta.delta_gpu[0][1].chunks == {}
    assert delta.chunks_written == 1
    assert delta.chunks_reused == 1 + 2
    # The unchanged CPU page was dropped; logical accounting survives.
    assert delta.cpu_pages == {}
    assert delta.cpu_logical_pages == 1
    assert delta.stored_bytes() == 256
    assert delta.gpu_bytes() == 2 * 4096


def test_materialize_reassembles_exact_bytes():
    parent = _full_image()
    changed = b"a" * 256 + b"Z" * 256
    delta = _delta_on(parent, changed)
    full = materialize(delta)
    assert full.gpu_buffers[0][0].data == changed
    assert full.gpu_buffers[0][1].data == b"b" * 512
    assert full.cpu_pages == {0: b"p" * 64}
    assert full.checkpoint_time == 2.0
    # Full images pass through untouched.
    assert materialize(parent) is parent


def test_seal_twice_rejected():
    parent = _full_image()
    delta = _delta_on(parent, b"c" * 512)
    with pytest.raises(TornImageError, match="sealed twice"):
        seal_delta(delta, parent)


def test_reuse_of_buffer_parent_lacks_rejected():
    parent = _full_image()
    delta = DeltaImage(name="bad", parent_id=parent.id, parent_ref=parent)
    with pytest.raises(TornImageError, match="parent does not hold"):
        seal_delta(delta, parent, reused={0: {99}})


def test_materialize_detects_missing_parent():
    parent = _full_image()
    delta = _delta_on(parent, b"c" * 512)
    delta.parent_ref = None  # simulate a load with no catalog
    with pytest.raises(TornImageError, match="cannot be resolved"):
        materialize(delta)
    # A resolve callback that finds the parent fixes it.
    full = materialize(delta, resolve={parent.id: parent}.get)
    assert full.gpu_buffers[0][0].data == b"c" * 512


def test_materialize_detects_cycle():
    parent = _full_image()
    a = _delta_on(parent, b"c" * 512, name="a")
    b = DeltaImage(name="b", parent_id=a.id, parent_ref=a)
    b.context_meta = {"cpu_pages": 1}
    seal_delta(b, materialize(a), reused={0: {0, 1}})
    b.finalize(3.0)
    a.parent_ref = b  # corrupt the chain into a loop
    a.parent_id = b.id
    with pytest.raises(TornImageError, match="cycle"):
        materialize(b)


def test_materialize_rejects_revoked_parent():
    parent = _full_image()
    delta = _delta_on(parent, b"c" * 512)
    parent.revoke("test: torn")
    with pytest.raises(TornImageError, match="revoked"):
        materialize(delta)


def test_corrupt_chunk_fails_content_address_check():
    parent = _full_image()
    delta = _delta_on(parent, b"a" * 256 + b"Z" * 256)
    delta.delta_gpu[0][0].chunks[1] = b"!" * 256  # bit-rot a stored chunk
    with pytest.raises(TornImageError, match="content-address"):
        materialize(delta)
    # Corrupting the *parent's* bytes is caught the same way.
    delta2 = _delta_on(parent, b"a" * 256 + b"Z" * 256, name="child2")
    parent.gpu_buffers[0][1].data = b"?" * 512
    with pytest.raises(TornImageError, match="content-address"):
        materialize(delta2)


# -- catalog chain rules ------------------------------------------------------------

def test_delta_commit_requires_committed_parent():
    catalog = ImageCatalog()
    parent = _full_image()
    delta = _delta_on(parent, b"c" * 512)
    catalog.stage(delta)
    with pytest.raises(CheckpointError, match="not committed"):
        catalog.commit(delta)
    assert delta.revoked
    assert catalog.staged_images() == []


def test_revoking_parent_revokes_descendant_chain():
    catalog = ImageCatalog()
    parent = _full_image()
    a = _delta_on(parent, b"c" * 512, name="a")
    b = DeltaImage(name="b", parent_id=a.id, parent_ref=a)
    b.context_meta = {"cpu_pages": 1}
    seal_delta(b, materialize(a), reused={0: {0, 1}})
    b.finalize(3.0)
    for img in (parent, a, b):
        catalog.stage(img)
        catalog.commit(img)
    assert all(catalog.is_committed(i) for i in (parent, a, b))
    catalog.revoke(parent, "test: torn root")
    for img in (parent, a, b):
        assert not catalog.is_committed(img)
        assert img.revoked
    assert "revoked" in b.revoked_reason or "parent" in b.revoked_reason
    with pytest.raises(TornImageError):
        materialize(b, resolve=catalog.lookup)


# -- the incremental protocol end to end --------------------------------------------

def test_parentless_incremental_is_self_contained_root():
    eng, machine, phos, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        yield from quiesce(eng, [process])
        expected, _ = snapshot_process(process)
        image, session = yield phos.checkpoint(process, mode="incremental")
        return expected, image, session

    expected, image, session = eng.run_process(driver(eng))
    eng.run()
    assert isinstance(image, DeltaImage)
    assert image.parent_id is None
    assert image.sealed
    # A chain root carries every chunk locally: restorable with no parent.
    image.parent_ref = None
    assert image_gpu_state(image) == expected
    assert not session.aborted


def test_delta_chain_restore_bit_identical_to_full():
    """A 3-link chain materializes to exactly the bytes a from-scratch
    full checkpoint captures at the same virtual instant."""
    eng, machine, phos, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        yield from app.run(1)
        image, _ = yield phos.checkpoint(process, mode="incremental",
                                         name="root")
        for i in range(2):
            yield from app.run(1, start=1 + i)
            image, session = yield phos.checkpoint(
                process, mode="incremental", name=f"d{i}", parent=image)
            assert not session.aborted
        yield from quiesce(eng, [process])
        expected, _ = snapshot_process(process)
        full, _ = yield phos.checkpoint(process, mode="stop-world",
                                        name="full")
        return expected, image, full

    expected, tip, full = eng.run_process(driver(eng))
    eng.run()
    assert tip.parent_id is not None
    assert image_gpu_state(tip) == expected
    assert image_gpu_state(tip) == image_gpu_state(full)
    # Chain restore through the daemon works off the catalog too.
    materialized = materialize(tip, resolve=phos.medium.images.lookup)
    assert image_gpu_state(materialized) == expected


def test_delta_stores_less_than_root():
    eng, machine, phos, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        root, _ = yield phos.checkpoint(process, mode="incremental")
        yield from app.run(1, start=2)
        delta, session = yield phos.checkpoint(process, mode="incremental",
                                               parent=root)
        return root, delta, session

    root, delta, session = eng.run_process(driver(eng))
    eng.run()
    assert delta.stored_bytes() < root.stored_bytes()
    assert delta.chunks_reused > 0
    # Logical accounting is unchanged: the delta *represents* the full
    # process state even though it stores only changed chunks.
    assert delta.gpu_bytes() == root.gpu_bytes()
    assert session.stats.bytes_skipped_incremental > 0


def test_freed_buffer_absent_from_delta():
    eng, machine, phos, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        root, _ = yield phos.checkpoint(process, mode="incremental")
        old = app.bufs.pop("out")
        yield from process.runtime.free(0, old)
        delta, _ = yield phos.checkpoint(process, mode="incremental",
                                         parent=root)
        yield from quiesce(eng, [process])
        expected, _ = snapshot_process(process)
        return expected, root, delta

    expected, root, delta = eng.run_process(driver(eng))
    eng.run()
    tags = {r.tag for r in delta.delta_gpu[0].values()}
    assert "out" not in tags
    assert image_gpu_state(delta) == expected


def test_sdk_auto_chains_incremental_checkpoints():
    eng, machine, phos, process, app = make_world()
    sdk = PhosSdk(phos, process)

    def driver(eng):
        yield from app.setup()
        yield from app.run(1)
        assert sdk.checkpoint(name="c0", mode="incremental")
        yield from sdk.wait_inflight()
        yield from app.run(1, start=1)
        assert sdk.checkpoint(name="c1", mode="incremental")
        yield from sdk.wait_inflight()

    eng.run_process(driver(eng))
    eng.run()
    root, child = sdk.images
    assert root.parent_id is None
    assert child.parent_id == root.id
    assert child.parent_name == root.name


# -- chaos: a checkpointer dying mid-delta-write ------------------------------------

def test_crash_mid_delta_write_leaves_parent_restorable():
    """Killing the checkpointer in the delta's transfer phase must not
    disturb the committed parent; the torn delta is revoked and never
    becomes visible in the catalog."""
    eng, machine, phos, process, app = make_world()
    from repro.core.protocols import registry

    def setup_driver(eng):
        yield from app.setup()
        yield from app.run(2)
        parent, _ = yield phos.checkpoint(process, mode="incremental",
                                          name="base")
        return parent, image_gpu_state(parent)

    parent, parent_state = eng.run_process(setup_driver(eng))
    eng.run()
    catalog = phos.medium.images
    assert catalog.is_committed(parent)

    protocol = registry.create("incremental", parent=parent)
    chaos.install(FaultPlan(faults=(
        FaultSpec(kind="crash-checkpointer", protocol="incremental",
                  phase="transfer"),
    )), engine=eng, killer=phos.kill)

    def doomed_driver(eng):
        yield from app.run(1, start=2)
        gen = protocol.checkpoint(
            eng, process=process, frontend=phos.frontend_of(process),
            medium=phos.medium, criu=phos.criu, name="doomed",
        )
        try:
            yield from gen
        except CheckpointError as err:
            return err
        return None

    err = eng.run_process(doomed_driver(eng))
    eng.run()
    chaos.uninstall()
    assert err is not None and "chaos" in str(err)
    doomed = protocol.last_context.image
    assert doomed.revoked
    assert not catalog.is_committed(doomed)
    assert catalog.staged_images() == []
    # The parent chain is untouched: still committed, bytes intact.
    assert catalog.is_committed(parent)
    assert not parent.revoked
    assert image_gpu_state(parent) == parent_state

    def epilogue(eng):
        phos.kill(process)
        new_process, _f, session = yield from phos.restore(
            parent, gpu_indices=[0], concurrent=True)
        yield session.done
        got, _ = snapshot_process(new_process)
        return got

    got = eng.run_process(epilogue(eng))
    eng.run()
    for key, data in parent_state.items():
        assert got[key] == data


# -- format v2 on disk --------------------------------------------------------------

@pytest.fixture
def chain(tmp_path):
    """A committed (root, delta) pair from a toy run, plus the catalog."""
    eng, machine, phos, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        root, _ = yield phos.checkpoint(process, mode="incremental",
                                        name="root")
        yield from app.run(1, start=2)
        delta, _ = yield phos.checkpoint(process, mode="incremental",
                                         parent=root, name="delta")
        return root, delta

    root, delta = eng.run_process(driver(eng))
    eng.run()
    return root, delta, phos.medium.images


def test_v2_roundtrip_preserves_everything(chain, tmp_path):
    root, delta, _catalog = chain
    path = tmp_path / "delta.phos"
    size = save_image(delta, path)
    assert size == path.stat().st_size
    loaded = load_image(path)
    assert isinstance(loaded, DeltaImage)
    assert loaded.sealed
    assert loaded.parent_id == delta.parent_id
    assert loaded.parent_name == delta.parent_name
    assert loaded.chunk_bytes == delta.chunk_bytes
    assert loaded.chunks_written == delta.chunks_written
    assert loaded.chunks_reused == delta.chunks_reused
    assert loaded.cpu_pages == delta.cpu_pages
    assert loaded.stored_bytes() == delta.stored_bytes()
    for gpu, table in delta.delta_gpu.items():
        for buf_id, rec in table.items():
            got = loaded.delta_gpu[gpu][buf_id]
            assert (got.addr, got.size, got.data_len, got.tag) == (
                rec.addr, rec.size, rec.data_len, rec.tag)
            assert got.hashes == rec.hashes
            assert got.chunks == rec.chunks
    # The loaded delta materializes identically via parent resolution.
    resolve = {root.id: root}.get
    assert (image_gpu_state(materialize(loaded, resolve=resolve))
            == image_gpu_state(delta))


def test_v2_roundtrip_through_saved_parent(chain, tmp_path):
    """Chain fully persisted: both links reloaded from disk, then
    materialized — bit-identical to the in-memory chain."""
    root, delta, _catalog = chain
    root_path, delta_path = tmp_path / "root.phos", tmp_path / "delta.phos"
    save_image(root, root_path)
    save_image(delta, delta_path)
    root2, delta2 = load_image(root_path), load_image(delta_path)
    # A reloaded chain root is itself a v2 delta with no parent.
    assert isinstance(root2, DeltaImage) and root2.parent_id is None
    by_id = {delta2.parent_id: root2}
    got = materialize(delta2, resolve=by_id.get)
    assert image_gpu_state(got) == image_gpu_state(delta)
    assert got.cpu_pages == materialize(delta).cpu_pages


def test_unsealed_delta_refuses_save(tmp_path):
    img = DeltaImage(name="raw")
    img.finalize(0.0)
    with pytest.raises(CheckpointError, match="not sealed"):
        save_image(img, tmp_path / "x.phos")


def test_v2_chunk_size_mismatch_rejected(chain, tmp_path):
    import json
    import struct
    import zlib

    _root, delta, _catalog = chain
    path = tmp_path / "delta.phos"
    save_image(delta, path)
    raw = path.read_bytes()
    body = raw[:-4]
    magic, version, meta_len = struct.unpack_from("<8sII", body)
    meta = json.loads(body[16 : 16 + meta_len])
    meta["delta"]["chunk_bytes"] = CHUNK_BYTES * 2  # tables no longer fit
    meta_bytes = json.dumps(meta, separators=(",", ":")).encode()
    new_body = (struct.pack("<8sII", magic, version, len(meta_bytes))
                + meta_bytes + body[16 + meta_len:])
    path.write_bytes(new_body + struct.pack("<I", zlib.crc32(new_body)))
    with pytest.raises(TornImageError):
        load_image(path)


# -- fig16 workload acceptance ------------------------------------------------------

def test_fig16_workload_chain_restore_bit_identical():
    """Acceptance: on fig16's workload (llama2-13b-train), restoring a
    delta chain equals restoring an equivalent full image, byte for
    byte.  CI runs this with the fast path on and off."""
    from repro.experiments import harness

    world = harness.build_world("llama2-13b-train")
    harness.setup_app(world)
    eng, phos, process = world.engine, world.phos, world.process

    def driver(eng):
        yield from world.workload.run(1)
        root, _ = yield phos.checkpoint(
            process, mode="incremental", name="root",
            config=harness.experiment_config())
        yield from world.workload.run(1, start=1)
        delta, _ = yield phos.checkpoint(
            process, mode="incremental", name="delta",
            config=harness.experiment_config(parent=root))
        yield from quiesce(eng, [process])
        expected, _ = snapshot_process(process)
        full, _ = yield phos.checkpoint(process, mode="stop-world",
                                        name="full")
        return root, delta, expected, full

    root, delta, expected, full = eng.run_process(driver(eng))
    eng.run()
    assert delta.stored_bytes() < root.stored_bytes()
    chain_state = image_gpu_state(delta)
    assert chain_state == image_gpu_state(full)
    assert chain_state == expected

    # Restore both through the daemon onto fresh machines; the restored
    # byte state must match exactly.
    def restore_one(image):
        machine2 = Machine(eng, name=f"m-{image.name}",
                           n_gpus=world.spec.n_gpus)
        phos2 = Phos(eng, machine2, use_context_pool=False)

        def rdriver(eng):
            new_process, _f, session = yield from phos2.restore(
                image, machine=machine2, concurrent=True)
            if session is not None:
                yield session.done
            got, _ = snapshot_process(new_process)
            return got

        got = eng.run_process(rdriver(eng))
        eng.run()
        return got

    assert restore_one(delta) == restore_one(full)
