"""Multi-GPU concurrent restore: correctness across devices."""

from repro.api.runtime import GpuProcess
from repro.cluster import Machine
from repro.core.daemon import Phos
from repro.gpu.context import GpuContext
from repro.sim import Engine
from repro.units import MIB

from tests.toyapp import ToyApp


def make_world(n_gpus=2):
    eng = Engine()
    machine = Machine(eng, n_gpus=n_gpus)
    phos = Phos(eng, machine, use_context_pool=False)
    process = GpuProcess(eng, machine, name="mg", gpu_indices=list(range(n_gpus)),
                         cpu_pages=8)
    for i in range(n_gpus):
        process.runtime.adopt_context(i, GpuContext(gpu_index=i))
    phos.attach(process)
    apps = [ToyApp(process, gpu_index=i, buf_size=64 * MIB, kernel_flops=1e9)
            for i in range(n_gpus)]
    return eng, machine, phos, process, apps


def checkpoint(eng, phos, process, apps, warm=2):
    def driver(eng):
        for app in apps:
            yield from app.setup()
        for app in apps:
            yield from app.run(warm)
        image, session = yield phos.checkpoint(process, mode="cow")
        assert not session.aborted
        return image

    image = eng.run_process(driver(eng))
    eng.run()
    return image


def test_multigpu_concurrent_restore_loads_every_device():
    eng, machine, phos, process, apps = make_world()
    image = checkpoint(eng, phos, process, apps)
    target = Machine(eng, name="t", n_gpus=2)
    phos2 = Phos(eng, target, use_context_pool=False)

    def driver(eng):
        result = yield from phos2.restore(
            image, gpu_indices=[0, 1], machine=target, concurrent=True
        )
        process2, frontend, session = result
        yield session.done
        return process2, session

    process2, session = eng.run_process(driver(eng))
    eng.run()
    assert session.all_restored()
    # Every GPU's buffers match the image, device by device.
    for gpu_index in (0, 1):
        by_addr = {b.addr: b for b in process2.runtime.allocations[gpu_index]}
        records = image.gpu_buffers[gpu_index]
        assert len(by_addr) == len(records)
        for rec in records.values():
            assert by_addr[rec.addr].snapshot() == rec.data


def test_multigpu_restore_loaders_run_in_parallel():
    """Two GPUs restore over two PCIe links: wall time ~= one GPU's."""

    def timed(n_gpus):
        eng, machine, phos, process, apps = make_world(n_gpus=n_gpus)
        image = checkpoint(eng, phos, process, apps)
        target = Machine(eng, name="t", n_gpus=n_gpus)
        phos2 = Phos(eng, target, use_context_pool=False)

        def driver(eng):
            t0 = eng.now
            result = yield from phos2.restore(
                image, gpu_indices=list(range(n_gpus)), machine=target,
                concurrent=True,
            )
            yield result[2].done
            return eng.now - t0

        elapsed = eng.run_process(driver(eng))
        eng.run()
        return elapsed

    one = timed(1)
    two = timed(2)
    assert two < 1.5 * one  # parallel, not serialized


def test_multigpu_on_demand_touches_only_the_needed_device():
    eng, machine, phos, process, apps = make_world()
    image = checkpoint(eng, phos, process, apps)
    target = Machine(eng, name="t", n_gpus=2)
    phos2 = Phos(eng, target, use_context_pool=False)

    def driver(eng):
        result = yield from phos2.restore(
            image, gpu_indices=[0, 1], machine=target, concurrent=True
        )
        process2, frontend, session = result
        # Run one iteration on GPU 1 only: its buffers must be served
        # on demand without waiting for GPU 0's plan.
        apps[1].bind_restored(process2)
        t0 = eng.now
        yield from apps[1].one_iteration(2)
        elapsed = eng.now - t0
        yield session.done
        return elapsed, session

    elapsed, session = eng.run_process(driver(eng))
    eng.run()
    assert session.demand_fetches > 0
    assert session.all_restored()
