"""Unit tests for the §A.1 optimal checkpoint frequency model."""

import math

import pytest

from repro.core.frequency import optimal_frequency, wasted_gpu_hours
from repro.errors import InvalidValueError


def test_formula_matches_published_fstar():
    # f* = sqrt(NF / 2O), exactly as printed.
    assert optimal_frequency(8, 1.0, 0.001) == pytest.approx(
        math.sqrt(8 * 1.0 / (2 * 0.001))
    )


def test_fstar_minimizes_waste():
    n, f_rate, t, o, r = 8, 1.0, 10.0, 0.002, 0.01
    f_star = optimal_frequency(n, f_rate, o)
    best = wasted_gpu_hours(n, f_rate, t, o, r, f_star)
    for factor in (0.5, 0.8, 1.25, 2.0):
        other = wasted_gpu_hours(n, f_rate, t, o, r, f_star * factor)
        assert best <= other + 1e-9


def test_cheaper_checkpoints_allow_higher_frequency():
    # The paper's Llama2-13B numbers: PHOS 279/h vs Singularity 67/h —
    # a ~17x cheaper checkpoint gives a ~sqrt(17)=4.2x higher f*.
    f_phos = optimal_frequency(8, 1.0, 0.185 / 3600)
    f_sing = optimal_frequency(8, 1.0, 3.2 / 3600)
    assert f_phos > 4 * f_sing
    assert f_phos / f_sing == pytest.approx(math.sqrt(3.2 / 0.185), rel=0.01)


def test_waste_scales_linearly_with_time_and_gpus_overhead_term():
    base = wasted_gpu_hours(4, 0.5, 1.0, 0.001, 0.01, 10.0)
    double_t = wasted_gpu_hours(4, 0.5, 2.0, 0.001, 0.01, 10.0)
    assert double_t == pytest.approx(2 * base)


def test_more_failures_more_waste():
    low = wasted_gpu_hours(8, 0.1, 1.0, 0.001, 0.01, 10.0)
    high = wasted_gpu_hours(8, 2.0, 1.0, 0.001, 0.01, 10.0)
    assert high > low


def test_validation_errors():
    with pytest.raises(InvalidValueError):
        optimal_frequency(0, 1.0, 0.01)
    with pytest.raises(InvalidValueError):
        optimal_frequency(8, -1.0, 0.01)
    with pytest.raises(InvalidValueError):
        optimal_frequency(8, 1.0, 0.0)
    with pytest.raises(InvalidValueError):
        wasted_gpu_hours(8, 1.0, 1.0, 0.01, 0.01, 0.0)
