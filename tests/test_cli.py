"""Unit tests for the phos command-line tool."""

import pytest

from repro.core.cli import build_parser, main


def test_no_command_prints_help(capsys):
    assert main([]) == 1
    assert "phos" in capsys.readouterr().out


def test_apps_lists_all_models(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    for name in ("resnet152-train", "llama2-13b-infer", "llama3-70b-infer"):
        assert name in out


def test_checkpoint_command(capsys):
    assert main(["checkpoint", "--app", "ppo-train", "--mode", "cow",
                 "--steps", "2"]) == 0
    out = capsys.readouterr().out
    assert "application stall" in out
    assert "checkpoint report" in out
    assert "GPU state" in out


def test_checkpoint_stop_world(capsys):
    assert main(["checkpoint", "--app", "resnet152-train",
                 "--mode", "stop-world", "--steps", "1"]) == 0
    assert "stall" in capsys.readouterr().out


def test_restore_command(capsys):
    assert main(["restore", "--app", "resnet152-infer"]) == 0
    out = capsys.readouterr().out
    assert "time until runnable" in out


def test_restore_stop_world(capsys):
    assert main(["restore", "--app", "resnet152-infer", "--stop-world"]) == 0
    assert "stop-the-world" in capsys.readouterr().out


def test_migrate_command(capsys):
    assert main(["migrate", "--app", "resnet152-train",
                 "--system", "phos"]) == 0
    assert "downtime" in capsys.readouterr().out


def test_migrate_unsupported_returns_error(capsys):
    assert main(["migrate", "--app", "llama2-13b-train",
                 "--system", "cuda-checkpoint"]) == 1


def test_bench_command(capsys):
    assert main(["bench", "--exp", "tab03"]) == 0
    assert "rodinia" in capsys.readouterr().out


def test_invalid_app_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["checkpoint", "--app", "not-a-model"])
