"""Unit and round-trip tests for the ISA assembler."""

import pytest

from repro.errors import IsaError
from repro.gpu.assembler import assemble
from repro.gpu.disasm import disassemble
from repro.gpu.instrument import instrument_program
from repro.gpu.interpreter import run_kernel
from repro.gpu.memory import DeviceMemory
from repro.gpu.program import STANDARD_BUILDERS, build_global_reader
from repro.units import MIB

DOUBLER = """
// doubler: __global__ void doubler(const long* x, long* y, long n)
arg    r0, #0
arg    r1, #1
arg    r2, #2
tid    r3
bge    r3, r2, end
muli   r4, r3, 8
add    r5, r0, r4
ld.global  r6, [r5]
muli   r6, r6, 2
add    r7, r1, r4
st.global  [r7], r6
end:
exit
"""


@pytest.fixture
def mem():
    return DeviceMemory(capacity=16 * MIB, default_data_size=512)


def test_assemble_and_run(mem):
    prog = assemble(DOUBLER)
    assert prog.name == "doubler"
    x, y = mem.alloc(512), mem.alloc(512)
    for i in range(4):
        x.store_word(x.addr + 8 * i, i + 1)
    run_kernel(prog, [x.addr, y.addr, 4], n_threads=4, memory=mem)
    assert [y.load_word(y.addr + 8 * i) for i in range(4)] == [2, 4, 6, 8]


def test_roundtrip_every_standard_program(mem):
    """assemble(disassemble(p)) must behave identically to p."""
    for builder_name, builder in STANDARD_BUILDERS.items():
        prog = builder()
        clone = assemble(disassemble(prog))
        assert clone.name == prog.name
        assert len(clone.instrs) == len(prog.instrs)
        assert clone.labels == prog.labels
        assert [i.op for i in clone.instrs] == [i.op for i in prog.instrs]


def test_roundtrip_preserves_globals(mem):
    hidden = mem.alloc(512)
    prog = build_global_reader("gr", "table", hidden.addr)
    clone = assemble(disassemble(prog))
    assert clone.globals_ == {"table": hidden.addr}
    y = mem.alloc(512)
    hidden.store_word(hidden.addr, 42)
    run_kernel(clone, [y.addr, 1], n_threads=1, memory=mem)
    assert y.load_word(y.addr) == 42


def test_roundtrip_instrumented_twin(mem):
    twin = instrument_program(STANDARD_BUILDERS["saxpy"](), check_reads=True)
    clone = assemble(disassemble(twin))
    assert clone.instrumented
    assert [i.op for i in clone.instrs] == [i.op for i in twin.instrs]
    assert [i.imm for i in clone.instrs] == [i.imm for i in twin.instrs]


def test_name_decl_override():
    prog = assemble("exit", name="noop", decl="void noop()")
    assert prog.name == "noop"
    assert len(prog.instrs) == 1


def test_missing_header_rejected():
    with pytest.raises(IsaError, match="header"):
        assemble("exit")


def test_bad_line_rejected():
    with pytest.raises(IsaError, match="cannot assemble"):
        assemble("frobnicate r1, r2", name="x")


def test_duplicate_label_rejected():
    with pytest.raises(IsaError, match="duplicate"):
        assemble("a:\na:\nexit", name="x")


def test_hex_immediates_and_comments():
    prog = assemble("""
    seti r0, 0x10   // sixteen
    exit
    """, name="h")
    assert prog.instrs[0].imm == 16
