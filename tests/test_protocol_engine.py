"""The ProtocolEngine: registry, typed config, and phase conformance.

Every checkpoint/restore protocol is addressable by name through
:mod:`repro.core.protocols.registry`; tunables travel as a validated
:class:`~repro.core.protocols.base.ProtocolConfig`.  These tests pin
the engine's contract — names, aliases, rejection messages, the phase
vocabulary — and run a conformance matrix over every registered
checkpoint protocol through the daemon, the SDK, and the CLI.

The figure-regression tests at the bottom assert that the refactor is
behaviour-preserving: fig11 (reduced), fig16, fig17 and fig18 must be
bit-identical to the goldens captured from the pre-refactor tree.
"""

import io
from contextlib import redirect_stdout
from pathlib import Path

import pytest

from repro.api.runtime import GpuProcess
from repro.cluster import Machine
from repro.core.cli import build_parser, main as cli_main
from repro.core.daemon import Phos
from repro.core.protocols import (
    CHECKPOINT_PHASES,
    RESTORE_PHASES,
    ProtocolConfig,
    registry,
)
from repro.core.quiesce import quiesce
from repro.core.sdk import PhosSdk
from repro.errors import CheckpointError
from repro.gpu.context import GpuContext
from repro.gpu.cost_model import KernelCost
from repro.gpu.program import build_global_writer
from repro.sim import Engine
from repro.units import MIB

from tests.toyapp import ToyApp, image_gpu_state, snapshot_process

GOLDENS = Path(__file__).parent / "goldens"

CHECKPOINT_NAMES = ["continuous", "cow", "hw-dirty", "incremental",
                    "recopy", "stop-world"]
RESTORE_NAMES = ["concurrent", "stop-world"]


def make_world(n_gpus=1):
    eng = Engine()
    machine = Machine(eng, n_gpus=n_gpus)
    phos = Phos(eng, machine, use_context_pool=False)
    process = GpuProcess(eng, machine, name="app", gpu_indices=[0], cpu_pages=8)
    process.runtime.adopt_context(0, GpuContext(gpu_index=0))
    phos.attach(process)
    app = ToyApp(process)
    return eng, machine, phos, process, app


# -- registry surface --------------------------------------------------------------

def test_registry_lists_every_protocol():
    assert registry.names("checkpoint") == CHECKPOINT_NAMES
    assert registry.names("restore") == RESTORE_NAMES


@pytest.mark.parametrize("alias,canonical", [
    ("soft-cow", "cow"),
    ("copy-on-write", "cow"),
    ("soft-recopy", "recopy"),
    ("stop_world", "stop-world"),
    ("stop-the-world", "stop-world"),
    ("hw_dirty", "hw-dirty"),
    ("hw-recopy", "hw-dirty"),
])
def test_checkpoint_aliases_resolve(alias, canonical):
    assert registry.canonical_name(alias, "checkpoint") == canonical
    assert registry.get(alias, "checkpoint") is registry.get(canonical,
                                                            "checkpoint")


@pytest.mark.parametrize("alias,canonical", [
    ("on-demand", "concurrent"),
    ("concurrent-restore", "concurrent"),
])
def test_restore_aliases_resolve(alias, canonical):
    assert registry.canonical_name(alias, "restore") == canonical


def test_unknown_mode_error_lists_registered_names():
    with pytest.raises(CheckpointError) as exc:
        registry.create("quantum")
    message = str(exc.value)
    assert "unknown checkpoint mode 'quantum'" in message
    for name in CHECKPOINT_NAMES:
        assert name in message


def test_unknown_restore_mode_rejected():
    with pytest.raises(CheckpointError, match="unknown restore mode"):
        registry.create("quantum", kind="restore")


def test_create_rejects_config_plus_tunables():
    with pytest.raises(CheckpointError, match="either"):
        registry.create("cow", config=ProtocolConfig(), chunk_bytes=MIB)


def test_every_protocol_declares_known_phases():
    for kind, order in (("checkpoint", CHECKPOINT_PHASES),
                        ("restore", RESTORE_PHASES)):
        for name in registry.names(kind):
            cls = registry.get(name, kind)
            assert cls.phases() == order
            assert cls.kind == kind
            assert cls.name == name


# -- config validation -------------------------------------------------------------

@pytest.mark.parametrize("bad", [
    {"precopy_rounds": -1},
    {"chunk_bytes": 0},
    {"chunk_bytes": -4096},
    {"cow_pool_bytes": 0},
    {"bandwidth_scale": 0.0},
    {"bandwidth_scale": -1.0},
])
def test_config_rejects_bad_values(bad):
    with pytest.raises(CheckpointError):
        ProtocolConfig(**bad)


def test_config_rejects_unknown_tunables():
    with pytest.raises(CheckpointError, match="unknown checkpoint tunable"):
        ProtocolConfig.from_kwargs(compression="zstd")


@pytest.mark.parametrize("mode,bad", [
    # parent= is an incremental-CoW feature; recopy overwrites in place.
    ("recopy", {"parent": object()}),
    # CoW resumes the app by design; keep_stopped contradicts it.
    ("cow", {"keep_stopped": True}),
    # Pre-copy rounds only exist in the recopy protocol.
    ("stop-world", {"precopy_rounds": 2}),
    ("hw-dirty", {"cow_pool_bytes": 4 * MIB}),
])
def test_unsupported_combination_rejected_at_construction(mode, bad):
    with pytest.raises(CheckpointError, match="does not support"):
        registry.create(mode, **bad)


def test_supported_combinations_accepted():
    registry.create("cow", parent=None, chunk_bytes=MIB, cow_pool_bytes=MIB)
    registry.create("recopy", keep_stopped=True, precopy_rounds=3,
                    bandwidth_scale=0.5)
    registry.create("stop-world", keep_stopped=True)
    registry.create("hw-dirty", keep_stopped=True, chunk_bytes=MIB)


# -- conformance matrix: every protocol through the daemon -------------------------

@pytest.mark.parametrize("mode", CHECKPOINT_NAMES)
def test_clean_checkpoint_captures_quiesced_state(mode):
    """Matrix row 1: a clean run with no concurrent writers.  The image
    must equal the process state at the request (t1 == t2 here)."""
    eng, machine, phos, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        yield from quiesce(eng, [process])
        expected, _ = snapshot_process(process)
        image, session = yield phos.checkpoint(process, mode=mode)
        return expected, image, session

    expected, image, session = eng.run_process(driver(eng))
    eng.run()
    assert image.finalized
    assert image_gpu_state(image) == expected
    if mode == "continuous":
        assert session.complete  # StreamSummary, not a CheckpointSession
    elif session is not None:
        assert not session.aborted


@pytest.mark.parametrize("mode", ["recopy", "stop-world", "hw-dirty"])
def test_keep_stopped_leaves_process_quiesced(mode):
    """Matrix row 2: keep_stopped (migration handoff) for the protocols
    that support it."""
    eng, machine, phos, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        yield from app.run(1)
        image, _ = yield phos.checkpoint(
            process, mode=mode, config=ProtocolConfig(keep_stopped=True))
        return image

    image = eng.run_process(driver(eng))
    eng.run()
    assert image.finalized
    assert process.runtime.cpu_stopped


def test_cow_abort_falls_back_to_stop_world():
    """Matrix row 3: mis-speculation aborts CoW; the phase driver's
    commit/abort phase produces a consistent stop-the-world retry."""
    eng, machine, phos, process, _ = make_world()
    app = ToyApp(process, buf_size=256 * MIB, kernel_flops=1e9)

    def driver(eng):
        yield from app.setup()
        yield from app.run(1)
        hidden = app.bufs["out"]
        sneaky = build_global_writer("sneaky", "hidden_out", hidden.addr)
        yield from quiesce(eng, [process])
        # Exercise alias dispatch on the abort path too.
        handle = phos.checkpoint(process, mode="soft-cow")
        yield from process.runtime.launch_kernel(
            0, sneaky, [app.bufs["input"].addr, 8], 8,
            cost=KernelCost(flops=1e9), sync=True,
        )
        image, session = yield handle
        return image, session

    image, session = eng.run_process(driver(eng))
    eng.run()
    assert session.aborted
    assert image.finalized
    assert image.name.endswith("-retry")
    got = image_gpu_state(image)
    live, _ = snapshot_process(process)
    for key in got:
        assert got[key] == live[key]


def test_cow_incremental_parent_through_registry():
    """Matrix row 4: parent= (incremental CoW) skips unwritten buffers
    and still captures the exact t1 state."""
    eng, machine, phos, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        parent, _ = yield phos.checkpoint(process, mode="cow", name="base")
        yield from app.run(2, start=2)
        yield from quiesce(eng, [process])
        expected, _ = snapshot_process(process)
        child, session = yield phos.checkpoint(
            process, mode="cow", config=ProtocolConfig(parent=parent))
        return expected, child, session

    expected, child, session = eng.run_process(driver(eng))
    eng.run()
    assert not session.aborted
    assert image_gpu_state(child) == expected
    assert session.stats.bytes_skipped_incremental > 0


@pytest.mark.parametrize("mode", RESTORE_NAMES)
def test_restore_protocols_roundtrip(mode):
    """Both restore protocols bring back the exact checkpointed bytes."""
    eng, machine, phos, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        image, _ = yield phos.checkpoint(process, mode="cow")
        expected = image_gpu_state(image)
        machine2 = Machine(eng, name="m2", n_gpus=1)
        phos2 = Phos(eng, machine2, use_context_pool=False)
        new_process, _frontend, session = yield from phos2.restore(
            image, gpu_indices=[0], machine=machine2, mode=mode)
        if session is not None:
            yield session.done
        got, _ = snapshot_process(new_process)
        return expected, got

    expected, got = eng.run_process(driver(eng))
    eng.run()
    assert expected == got


# -- hw-dirty reachability (daemon, SDK, CLI) --------------------------------------

def test_hw_dirty_restorable_through_daemon():
    """The once-orphaned hw-dirty protocol is a first-class citizen:
    its image carries module/context metadata and restores cleanly."""
    eng, machine, phos, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        image, session = yield phos.checkpoint(process, mode="hw-dirty")
        assert session is None
        expected = image_gpu_state(image)
        machine2 = Machine(eng, name="m2", n_gpus=1)
        phos2 = Phos(eng, machine2, use_context_pool=False)
        new_process, _f, rsession = yield from phos2.restore(
            image, machine=machine2, concurrent=True)
        yield rsession.done
        got, _ = snapshot_process(new_process)
        return expected, got

    expected, got = eng.run_process(driver(eng))
    eng.run()
    assert expected == got


def test_hw_dirty_through_sdk():
    eng, machine, phos, process, app = make_world()
    sdk = PhosSdk(phos, process)
    assert "hw-dirty" in sdk.protocols()

    def driver(eng):
        yield from app.setup()
        yield from app.run(1)
        assert sdk.checkpoint(name="hw", mode="hw-dirty")
        yield from sdk.wait_inflight()

    eng.run_process(driver(eng))
    eng.run()
    assert sdk.last_image is not None
    assert sdk.last_image.name == "hw"


def test_cli_accepts_every_registered_mode():
    parser = build_parser()
    for mode in CHECKPOINT_NAMES:
        args = parser.parse_args(["checkpoint", "--mode", mode])
        assert args.mode == mode
    with pytest.raises(SystemExit):
        parser.parse_args(["checkpoint", "--mode", "quantum"])


def test_cli_protocols_subcommand_lists_table():
    buf = io.StringIO()
    with redirect_stdout(buf):
        rc = cli_main(["protocols"])
    assert rc == 0
    out = buf.getvalue()
    for name in CHECKPOINT_NAMES:
        assert name in out
    assert " -> ".join(CHECKPOINT_PHASES) in out
    assert " -> ".join(RESTORE_PHASES) in out


# -- abort-path resource accounting ------------------------------------------------

def _assert_engine_resources_quiet(machine, observer):
    """After any abort, no resource user/waiter and no open span remains."""
    for gpu in machine.gpus:
        assert list(gpu.dma.pool.iter_users()) == []
        assert list(gpu.dma.pool.iter_waiting()) == []
    open_spans = [n.name for n in observer.spans.iter_nodes() if n.open]
    assert open_spans == []


def test_mis_speculation_abort_releases_every_resource():
    """phase_abort (validator hit) leaves no DMA request or open span."""
    from repro import obs

    eng, machine, phos, process, _ = make_world()
    app = ToyApp(process, buf_size=256 * MIB, kernel_flops=1e9)
    observer = obs.install(eng)
    try:
        def driver(eng):
            yield from app.setup()
            yield from app.run(1)
            hidden = app.bufs["out"]
            sneaky = build_global_writer("sneaky", "hidden_out", hidden.addr)
            yield from quiesce(eng, [process])
            handle = phos.checkpoint(process, mode="cow")
            yield from process.runtime.launch_kernel(
                0, sneaky, [app.bufs["input"].addr, 8], 8,
                cost=KernelCost(flops=1e9), sync=True,
            )
            image, session = yield handle
            return image, session

        image, session = eng.run_process(driver(eng))
        eng.run()
        assert session.aborted
        assert image.finalized  # the stop-the-world retry committed
        _assert_engine_resources_quiet(machine, observer)
        aborts = sum(c.value for c in observer.metrics.find(
            "protocol/aborts"))
        assert aborts >= 1
    finally:
        obs.uninstall()


def test_crash_abort_releases_every_resource():
    """A mid-transfer crash (chaos) leaves the engine just as quiet."""
    from repro import chaos, obs
    from repro.chaos import FaultPlan, FaultSpec

    eng, machine, phos, process, app = make_world()
    observer = obs.install(eng)
    try:
        chaos.install(FaultPlan(faults=(
            FaultSpec(kind="crash-checkpointer", protocol="cow",
                      phase="transfer"),
        )), engine=eng, killer=phos.kill)

        def driver(eng):
            yield from app.setup()
            yield from app.run(2)
            try:
                yield phos.checkpoint(process, mode="cow")
            except CheckpointError as err:
                return err
            return None

        err = eng.run_process(driver(eng))
        eng.run()
        chaos.uninstall()
        assert err is not None
        _assert_engine_resources_quiet(machine, observer)
        # The frontend is back in pass-through mode.
        assert phos.frontend_of(process).ckpt_session is None
        assert phos.frontend_of(process).restore_session is None
    finally:
        chaos.uninstall()
        obs.uninstall()


# -- figure bit-identity regression ------------------------------------------------

def _golden(name: str) -> str:
    return (GOLDENS / f"{name}.txt").read_text().rstrip("\n")


def test_fig11_reduced_matches_golden():
    from repro.experiments.fig11_stall import run

    got = run(checkpoint_apps=("resnet152-train",),
              restore_apps=("resnet152-infer",)).format()
    assert got.rstrip("\n") == _golden("fig11_reduced")


@pytest.mark.parametrize("fig,module", [
    ("fig16", "repro.experiments.fig16_cow_breakdown"),
    ("fig17", "repro.experiments.fig17_recopy_breakdown"),
    ("fig18", "repro.experiments.fig18_restore_breakdown"),
])
def test_breakdown_figures_match_golden(fig, module):
    import importlib

    got = importlib.import_module(module).run().format()
    assert got.rstrip("\n") == _golden(fig)
