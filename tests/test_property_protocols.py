"""Property-based tests of the §4 correctness claims (hypothesis).

For randomized workloads and randomized checkpoint timings:

* the CoW image equals the quiesced state at t1 (stop-the-world-at-t1
  equivalence, §4.2);
* the recopy image equals the live state at t2 (stop-the-world-at-t2
  equivalence, §4.3);
* a concurrently-restored process computes the same final state as a
  stop-the-world-restored one (§6).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.runtime import GpuProcess
from repro.cluster import Machine
from repro.core.daemon import Phos
from repro.core.protocols.recopy import checkpoint_recopy
from repro.core.quiesce import quiesce, resume
from repro.gpu.context import GpuContext
from repro.gpu.cost_model import KernelCost
from repro.gpu.program import (
    build_copy,
    build_fill,
    build_inplace_add,
    build_scale,
    build_scatter,
)
from repro.sim import Engine
from repro.units import MIB

from tests.toyapp import image_gpu_state, snapshot_process

N_BUFS = 5
N_WORDS = 8

_PROGRAMS = [build_fill(), build_scale(), build_copy(), build_inplace_add(),
             build_scatter()]

op_strategy = st.tuples(
    st.integers(0, len(_PROGRAMS) + 1),  # program index; extras = memcpy/lib
    st.integers(0, N_BUFS - 1),          # src buffer
    st.integers(0, N_BUFS - 1),          # dst buffer
    st.integers(1, 40),                  # payload / cost scale
)

workload_strategy = st.lists(op_strategy, min_size=3, max_size=16)


def build_process():
    eng = Engine()
    machine = Machine(eng, n_gpus=1)
    phos = Phos(eng, machine, use_context_pool=False)
    process = GpuProcess(eng, machine, name="prop", gpu_indices=[0], cpu_pages=4)
    process.runtime.adopt_context(0, GpuContext(gpu_index=0))
    phos.attach(process)
    return eng, machine, phos, process


def setup_buffers(rt, size):
    bufs = []

    def gen():
        for i in range(N_BUFS):
            buf = yield from rt.malloc(0, size, tag=f"p{i}")
            yield from rt.memcpy_h2d(0, buf, payload=i + 1, sync=True)
            bufs.append(buf)
        # A permutation for the scatter kernel.
        for j in range(N_WORDS):
            bufs[0].store_word(bufs[0].addr + 8 * j, (j * 3 + 1) % N_WORDS)

    return gen, bufs


def apply_op(rt, bufs, op, cost):
    kind, src_i, dst_i, payload = op
    src, dst = bufs[src_i], bufs[dst_i]

    def gen():
        if kind < len(_PROGRAMS):
            prog = _PROGRAMS[kind]
            if prog.name == "fill":
                args = [dst.addr, N_WORDS, payload]
            elif prog.name == "inplace_add":
                args = [dst.addr, N_WORDS]
            elif prog.name == "scatter":
                args = [src.addr, bufs[0].addr, dst.addr, N_WORDS]
            else:  # copy / scale
                args = [src.addr, dst.addr, N_WORDS]
            yield from rt.launch_kernel(0, prog, args, N_WORDS, cost=cost)
        elif kind == len(_PROGRAMS):
            yield from rt.memcpy_h2d(0, dst, payload=payload)
        else:
            yield from rt.lib_compute(
                0, "gemm", reads=[src], writes=[dst], cost=cost, salt=payload
            )
        yield from rt.cpu_work(1e-5, write_pages=[payload % 4], value=payload)

    return gen


@given(workload_strategy, st.integers(0, 2), st.integers(1, 30))
@settings(max_examples=25, deadline=None)
def test_cow_image_always_equals_t1_state(ops, warm_ops, cost_scale):
    eng, machine, phos, process = build_process()
    rt = process.runtime
    cost = KernelCost(flops=cost_scale * 1e11, bytes_moved=0, memory_intensity=0.5)
    setup_gen, bufs = setup_buffers(rt, 8 * MIB)
    state = {}

    def driver(eng):
        yield from setup_gen()
        for op in ops[:warm_ops]:
            yield from apply_op(rt, bufs, op, cost)()
        yield from quiesce(eng, [process])
        state["gpu"], state["cpu"] = snapshot_process(process)
        handle = phos.checkpoint(process, mode="cow")
        for op in ops[warm_ops:]:
            yield from apply_op(rt, bufs, op, cost)()
        image, session = yield handle
        return image, session

    image, session = eng.run_process(driver(eng))
    eng.run()
    assert not session.aborted
    got = image_gpu_state(image)
    assert set(got) == set(state["gpu"])
    for key, expected in state["gpu"].items():
        assert got[key] == expected
    for idx, page in enumerate(state["cpu"]):
        assert image.cpu_pages[idx] == page


@given(workload_strategy, st.integers(1, 30))
@settings(max_examples=25, deadline=None)
def test_recopy_image_always_equals_t2_state(ops, cost_scale):
    eng, machine, phos, process = build_process()
    rt = process.runtime
    cost = KernelCost(flops=cost_scale * 1e11, bytes_moved=0, memory_intensity=0.5)
    setup_gen, bufs = setup_buffers(rt, 8 * MIB)
    state = {}

    def driver(eng):
        yield from setup_gen()
        frontend = phos.frontend_of(process)
        handle = eng.spawn(checkpoint_recopy(
            eng, frontend, phos.medium, phos.criu, keep_stopped=True,
        ))
        for op in ops:
            yield from apply_op(rt, bufs, op, cost)()
        image, session = yield handle
        state["gpu"], state["cpu"] = snapshot_process(process)
        resume([process])
        return image, session

    image, session = eng.run_process(driver(eng))
    eng.run()
    got = image_gpu_state(image)
    assert set(got) == set(state["gpu"])
    for key, expected in state["gpu"].items():
        assert got[key] == expected
    for idx, page in enumerate(state["cpu"]):
        assert image.cpu_pages[idx] == page


@given(workload_strategy, st.integers(1, 20))
@settings(max_examples=15, deadline=None)
def test_restore_concurrent_equals_stop_world(ops, cost_scale):
    cost = KernelCost(flops=cost_scale * 1e11, bytes_moved=0, memory_intensity=0.5)

    def run_variant(concurrent):
        eng, machine, phos, process = build_process()
        rt = process.runtime
        setup_gen, bufs = setup_buffers(rt, 8 * MIB)

        def make_image(eng):
            yield from setup_gen()
            image, session = yield phos.checkpoint(process, mode="cow")
            assert not session.aborted
            return image

        image = eng.run_process(make_image(eng))
        eng.run()
        machine2 = Machine(eng, name="node1", n_gpus=1)
        phos2 = Phos(eng, machine2, use_context_pool=False)

        def restored(eng):
            result = yield from phos2.restore(
                image, gpu_indices=[0], concurrent=concurrent, machine=machine2
            )
            new_process = result[0]
            session = result[2]
            by_tag = {b.tag: b for b in new_process.runtime.allocations[0]}
            new_bufs = [by_tag[f"p{i}"] for i in range(N_BUFS)]
            for op in ops:
                yield from apply_op(new_process.runtime, new_bufs, op, cost)()
            yield from new_process.runtime.device_synchronize(0)
            if session is not None:
                yield session.done
            return {b.tag: b.snapshot() for b in new_process.runtime.allocations[0]}

        final = eng.run_process(restored(eng))
        eng.run()
        return final

    assert run_variant(True) == run_variant(False)
