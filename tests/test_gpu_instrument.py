"""Unit tests for the validator instrumentation pass (twin kernels)."""

import pytest

from repro.gpu.instrument import check_count, instrument_program
from repro.gpu.interpreter import AccessKind, ValidationState, run_kernel
from repro.gpu.isa import Op
from repro.gpu.memory import DeviceMemory
from repro.gpu.program import (
    build_copy,
    build_fill,
    build_global_writer,
    build_reduce_sum,
    build_scatter,
)
from repro.gpu.ranges import RangeSet
from repro.units import MIB


@pytest.fixture
def mem():
    return DeviceMemory(capacity=64 * MIB, default_data_size=512)


def ranges_of(*bufs):
    return RangeSet((b.addr, b.end) for b in bufs)


def validation(write_bufs=(), read_bufs=()):
    return ValidationState(
        read_ranges=ranges_of(*read_bufs), write_ranges=ranges_of(*write_bufs)
    )


def test_twin_has_chk_before_every_store():
    prog = build_fill()
    twin = instrument_program(prog)
    assert twin.instrumented
    assert check_count(twin) == prog.store_count
    for i, ins in enumerate(twin.instrs):
        if ins.op is Op.STG:
            assert twin.instrs[i - 1].op is Op.CHK


def test_original_program_unchanged():
    prog = build_fill()
    before = list(prog.instrs)
    instrument_program(prog)
    assert prog.instrs == before
    assert not prog.instrumented


def test_check_reads_adds_load_checks():
    prog = build_copy()
    twin = instrument_program(prog, check_reads=True)
    loads = sum(1 for ins in prog.instrs if ins.op is Op.LDG)
    assert check_count(twin) == prog.store_count + loads


def test_double_instrumentation_rejected():
    twin = instrument_program(build_fill())
    with pytest.raises(ValueError):
        instrument_program(twin)


def test_twin_computes_same_result(mem):
    x, y = mem.alloc(512), mem.alloc(512)
    for i in range(8):
        x.store_word(x.addr + 8 * i, i + 1)
    twin = instrument_program(build_copy())
    v = validation(write_bufs=[y], read_bufs=[x])
    run_kernel(twin, [x.addr, y.addr, 8], n_threads=8, memory=mem, validation=v)
    assert y.snapshot() == x.snapshot()
    assert v.violations == []


def test_labels_survive_instrumentation(mem):
    # reduce_sum branches over a loop; the twin must still terminate and
    # compute the same value.
    x, out = mem.alloc(512), mem.alloc(64)
    for i in range(8):
        x.store_word(x.addr + 8 * i, 2)
    twin = instrument_program(build_reduce_sum())
    v = validation(write_bufs=[out], read_bufs=[x])
    run_kernel(twin, [x.addr, out.addr, 8], n_threads=2, memory=mem, validation=v)
    assert out.load_word(out.addr) == 16
    assert v.violations == []


def test_validator_catches_out_of_speculation_write(mem):
    x, hidden = mem.alloc(512), mem.alloc(512)
    prog = build_global_writer("gw", "out", hidden.addr)
    twin = instrument_program(prog)
    # Speculation only sees argument x (const) — hidden is not writable.
    v = validation(write_bufs=[], read_bufs=[x])
    run_kernel(twin, [x.addr, 4], n_threads=4, memory=mem, validation=v)
    assert len(v.violations) == 4
    assert all(viol.kind is AccessKind.WRITE for viol in v.violations)
    assert all(hidden.contains(viol.addr) for viol in v.violations)
    assert {viol.kernel for viol in v.violations} == {"gw"}


def test_validator_passes_in_buffer_indirect_writes(mem):
    x, idx, y = (mem.alloc(512) for _ in range(3))
    for i in range(4):
        idx.store_word(idx.addr + 8 * i, 3 - i)
    twin = instrument_program(build_scatter())
    v = validation(write_bufs=[y], read_bufs=[x, idx])
    run_kernel(twin, [x.addr, idx.addr, y.addr, 4], n_threads=4, memory=mem, validation=v)
    assert v.violations == []


def test_read_check_uses_union_of_read_and_write_ranges(mem):
    # An in-place kernel reads the buffer it writes; with read checks on,
    # reads from the write set must not be flagged.
    from repro.gpu.program import build_inplace_add

    y = mem.alloc(512)
    twin = instrument_program(build_inplace_add(), check_reads=True)
    v = validation(write_bufs=[y], read_bufs=[])
    run_kernel(twin, [y.addr, 4], n_threads=4, memory=mem, validation=v)
    assert v.violations == []


def test_violation_does_not_stop_kernel(mem):
    x, hidden = mem.alloc(512), mem.alloc(512)
    x.store_word(x.addr, 123)
    prog = build_global_writer("gw", "out", hidden.addr)
    twin = instrument_program(prog)
    v = validation(write_bufs=[], read_bufs=[x])
    run_kernel(twin, [x.addr, 1], n_threads=1, memory=mem, validation=v)
    # The write itself still executed (the validator only reports).
    assert hidden.load_word(hidden.addr) == 123
    assert len(v.violations) == 1
