"""Integration tests: the closed-loop fault-tolerance controller."""

import pytest

from repro import units
from repro.apps.base import provision
from repro.apps.specs import get_spec
from repro.cluster import Machine
from repro.core.daemon import Phos
from repro.errors import CheckpointError
from repro.sim import Engine
from repro.tasks.ft_controller import FaultToleranceController, FtRunResult

APP = "resnet152-infer"  # fast steps keep the test quick


def make_controller(failures_per_hour, checkpoint_every=5, seed=7,
                    app="resnet152-train"):
    eng = Engine()
    spec = get_spec(app)
    machine = Machine(eng, n_gpus=spec.n_gpus)
    phos = Phos(eng, machine, use_context_pool=False)
    process, workload = provision(eng, machine, spec)
    phos.attach(process)
    controller = FaultToleranceController(
        eng, phos, process, workload,
        failures_per_hour=failures_per_hour,
        checkpoint_every_iters=checkpoint_every, seed=seed,
    )
    return eng, controller, workload


def run_controller(controller, eng, workload, iters):
    def driver(eng):
        yield from workload.setup()
        result = yield from controller.run(iters)
        return result

    result = eng.run_process(driver(eng))
    eng.run()
    return result


def test_failure_free_run_wastes_little():
    eng, controller, workload = make_controller(failures_per_hour=0.0001)
    result = run_controller(controller, eng, workload, iters=12)
    assert result.failures == 0
    assert result.checkpoints >= 2
    # Concurrent CoW checkpoints barely slow the run.
    assert result.wasted_fraction < 0.15


def test_failures_trigger_recovery_and_completion():
    # ~1 failure per 1.8 virtual seconds against 0.3 s iterations.
    eng, controller, workload = make_controller(failures_per_hour=2000.0,
                                                checkpoint_every=4, seed=3)
    result = run_controller(controller, eng, workload, iters=25)
    assert result.failures >= 1
    assert result.recomputed_iters > 0
    assert result.restore_seconds > 0
    # The run still reached its target.
    assert result.wall_seconds > result.useful_seconds


def test_recovery_resumes_from_latest_image():
    eng, controller, workload = make_controller(failures_per_hour=2500.0,
                                                checkpoint_every=3, seed=11)
    result = run_controller(controller, eng, workload, iters=20)
    if result.failures:
        # Recomputation per failure is bounded by the checkpoint gap
        # plus the in-flight iteration.
        assert result.recomputed_iters <= result.failures * (3 + 2)


def test_more_frequent_checkpoints_reduce_recomputation():
    def recompute(every, seed=5):
        eng, controller, workload = make_controller(
            failures_per_hour=2500.0, checkpoint_every=every, seed=seed
        )
        result = run_controller(controller, eng, workload, iters=24)
        return result.recomputed_iters, result.failures

    sparse, f1 = recompute(every=8)
    dense, f2 = recompute(every=2)
    if f1 and f2:  # same seed, but failure times shift with the runs
        assert dense / max(1, f2) <= sparse / max(1, f1)


def test_measured_waste_matches_model_scale():
    """The measured wasted fraction lands within ~3x of the §A.1
    prediction for the same parameters (the model is an expectation;
    the run is one stochastic sample)."""
    failures_per_hour = 1500.0
    every = 4
    eng, controller, workload = make_controller(
        failures_per_hour=failures_per_hour, checkpoint_every=every, seed=2
    )
    result = run_controller(controller, eng, workload, iters=30)
    if result.failures == 0:
        pytest.skip("no failure drawn for this seed")
    # Compare like-for-like: feed the model the *realized* failure rate
    # (the configured rate is an expectation; one run samples it).
    wall_hours = result.wall_seconds / units.HOUR
    realized_f = result.failures / wall_hours
    f_per_hour = units.HOUR / (every * result.iter_seconds)
    overhead_h = (result.checkpoint_stall_seconds or 0.02) / units.HOUR
    restore_h = (result.restore_seconds / result.failures) / units.HOUR
    predicted = result.predicted_wasted_fraction(
        1, realized_f, f_per_hour, overhead_h, restore_h
    )
    measured = result.wasted_fraction
    assert measured > 0
    assert predicted / 4 <= measured <= predicted * 4


def test_invalid_interval_rejected():
    eng = Engine()
    spec = get_spec("resnet152-train")
    machine = Machine(eng, n_gpus=1)
    phos = Phos(eng, machine, use_context_pool=False)
    process, workload = provision(eng, machine, spec)
    phos.attach(process)
    with pytest.raises(CheckpointError):
        FaultToleranceController(eng, phos, process, workload, 1.0,
                                 checkpoint_every_iters=0)


def test_wasted_fraction_zero_duration_run_is_zero():
    # Regression: target_iters=0 completes instantly (wall_seconds ==
    # 0.0) and wasted_fraction used to divide by it, poisoning every
    # downstream aggregate with NaN.  A run that took no time wasted
    # nothing.
    result = FtRunResult(target_iters=0, wall_seconds=0.0, iter_seconds=0.0)
    assert result.wasted_fraction == 0.0


def test_wasted_fraction_stays_in_unit_interval():
    result = FtRunResult(target_iters=10, wall_seconds=4.0, iter_seconds=0.3)
    assert 0.0 <= result.wasted_fraction <= 1.0
    # Clamped at zero even if useful time over-counts (restored runs
    # re-credit recomputed iterations).
    result = FtRunResult(target_iters=10, wall_seconds=2.0, iter_seconds=0.3)
    assert result.wasted_fraction == 0.0
