"""The serverless fleet: traces, snapshot pool, scheduler policies.

Scheduler tests inject synthetic :class:`FunctionProfile`s so every
policy (admission control, best-fit packing, migration-for-packing,
failure-driven restore) is exercised against hand-built traces without
paying the calibration probes.  Every scenario also runs once with the
fleet sharded into per-machine clock domains and must produce the
bit-identical record stream — gateway and agents only ever talk through
``DomainChannel``s, so the event program cannot depend on the sharding.
"""

import math

import pytest

from repro.errors import InvalidValueError
from repro.fleet.calibrate import FunctionProfile
from repro.fleet.scheduler import FleetConfig, run_fleet
from repro.fleet.snapshots import SnapshotPool
from repro.fleet.traces import (
    DEFAULT_WEIGHTS,
    Trace,
    TraceConfig,
    TraceRequest,
    generate,
)

# --------------------------------------------------------------------------
# traces
# --------------------------------------------------------------------------


def test_trace_is_seed_deterministic():
    cfg = TraceConfig(kind="bursty", rate=3.0, duration=30.0, seed=9)
    assert generate(cfg) == generate(cfg)
    other = generate(TraceConfig(kind="bursty", rate=3.0, duration=30.0,
                                 seed=10))
    assert generate(cfg) != other


@pytest.mark.parametrize("kind", ["poisson", "bursty", "diurnal"])
def test_trace_shape(kind):
    cfg = TraceConfig(kind=kind, rate=4.0, duration=50.0, seed=2,
                      weights=DEFAULT_WEIGHTS)
    trace = generate(cfg)
    arrivals = [r.arrival for r in trace.requests]
    assert arrivals == sorted(arrivals)
    assert all(0.0 <= t < cfg.duration for t in arrivals)
    assert [r.index for r in trace.requests] == list(range(len(trace)))
    assert all(r.function in cfg.functions for r in trace.requests)
    # Long-run mean within a loose band of the configured rate.
    assert 0.5 * cfg.rate * cfg.duration < len(trace) \
        < 2.0 * cfg.rate * cfg.duration


def test_trace_validation():
    with pytest.raises(InvalidValueError):
        TraceConfig(kind="lumpy")
    with pytest.raises(InvalidValueError):
        TraceConfig(rate=0.0)
    with pytest.raises(InvalidValueError):
        TraceConfig(rate=float("nan"))
    with pytest.raises(InvalidValueError):
        TraceConfig(duration=-5.0)
    with pytest.raises(InvalidValueError):
        TraceConfig(burst_factor=1.0)
    with pytest.raises(InvalidValueError):
        TraceConfig(peak_ratio=3.0)
    with pytest.raises(InvalidValueError):
        TraceConfig(functions=())
    with pytest.raises(InvalidValueError):
        TraceConfig(functions=("a", "b"), weights=(1.0,))
    with pytest.raises(InvalidValueError):
        TraceConfig(functions=("a",), weights=(float("nan"),))


def test_trace_custom_catalog_defaults_to_uniform_weights():
    # Regression: a custom catalog used to trip the length check
    # against the default three-entry weight vector.
    cfg = TraceConfig(functions=("a", "b", "c", "d"), seed=3)
    trace = generate(cfg)
    assert {r.function for r in trace.requests} <= {"a", "b", "c", "d"}


# --------------------------------------------------------------------------
# snapshot pool
# --------------------------------------------------------------------------


def test_pool_validation():
    with pytest.raises(InvalidValueError):
        SnapshotPool(0)
    with pytest.raises(InvalidValueError):
        SnapshotPool(True)
    with pytest.raises(InvalidValueError):
        SnapshotPool(2.0)
    with pytest.raises(InvalidValueError):
        SnapshotPool(2, context_slots=-1)
    with pytest.raises(InvalidValueError):
        SnapshotPool(2, context_refill_s=float("nan"))


def test_pool_lru_eviction():
    pool = SnapshotPool(2)
    pool.insert("a")
    pool.insert("b")
    assert pool.lookup("a")  # refreshes a: order is now b, a
    pool.insert("c")  # evicts b
    assert pool.warm_functions() == ["a", "c"]
    assert not pool.lookup("b")
    assert pool.evictions == 1
    assert (pool.hits, pool.misses) == (1, 1)


def test_pool_clear_drops_images_and_restores_contexts():
    pool = SnapshotPool(4, context_slots=2)
    pool.insert("a")
    assert pool.take_context() and pool.take_context()
    assert not pool.take_context()
    pool.clear()
    assert pool.warm_functions() == []
    assert pool.contexts_free == 2
    assert (pool.context_hits, pool.context_misses) == (2, 1)


def test_pool_context_refill_clamps_at_slots():
    pool = SnapshotPool(1, context_slots=1)
    pool.refill_context()
    assert pool.contexts_free == 1
    assert pool.take_context()
    pool.refill_context()
    assert pool.contexts_free == 1


# --------------------------------------------------------------------------
# fleet config validation
# --------------------------------------------------------------------------


def test_fleet_config_validation():
    with pytest.raises(InvalidValueError):
        FleetConfig(system="criu")
    with pytest.raises(InvalidValueError):
        FleetConfig(n_machines=0)
    with pytest.raises(InvalidValueError):
        FleetConfig(n_gpus=0)
    with pytest.raises(InvalidValueError):
        FleetConfig(pool_capacity=0)
    with pytest.raises(InvalidValueError):
        FleetConfig(queue_cap=-1)
    with pytest.raises(InvalidValueError):
        FleetConfig(requests_per_call=0)
    with pytest.raises(InvalidValueError):
        FleetConfig(failures_per_hour=float("nan"))
    with pytest.raises(InvalidValueError):
        FleetConfig(failures_per_hour=-1.0)
    with pytest.raises(InvalidValueError):
        FleetConfig(recovery_s=0.0)
    with pytest.raises(InvalidValueError):
        FleetConfig(max_retries=-1)
    with pytest.raises(InvalidValueError):
        FleetConfig(clock_domains="per-rack")
    with pytest.raises(InvalidValueError):
        FleetConfig(control_latency_s=0.0)


# --------------------------------------------------------------------------
# scheduler (synthetic profiles)
# --------------------------------------------------------------------------


def prof(function, n_gpus=1, start=0.05, nopool=None, exec_s=0.5,
         image=0, supported=True, downtime=0.2, system="phos"):
    nan = float("nan")
    if not supported:
        return FunctionProfile(system=system, function=function,
                               n_gpus=n_gpus, supported=False, start_s=nan,
                               nopool_start_s=nan, exec_s=nan, image_bytes=0)
    return FunctionProfile(
        system=system, function=function, n_gpus=n_gpus, supported=True,
        start_s=start, nopool_start_s=nopool if nopool is not None else start,
        exec_s=exec_s, image_bytes=image, migration_downtime_s=downtime,
    )


def make_trace(arrivals, duration=None):
    """A hand-built trace from ``[(arrival, function), ...]``."""
    functions = tuple(dict.fromkeys(f for _, f in arrivals))
    cfg = TraceConfig(
        kind="poisson", rate=1.0, functions=functions,
        duration=duration or max(t for t, _ in arrivals) + 60.0,
    )
    requests = tuple(TraceRequest(index=i, arrival=t, function=f)
                     for i, (t, f) in enumerate(arrivals))
    return Trace(config=cfg, requests=requests)


RECORD_FIELDS = ("index", "function", "arrival", "outcome", "machine",
                 "start", "end", "cold_start_s", "restore_s", "warm",
                 "pooled_ctx", "retries", "migrations")


def signature(report):
    """Records as comparable tuples (NaN normalized to None)."""
    def norm(v):
        if isinstance(v, float) and math.isnan(v):
            return None
        return v

    return [tuple(norm(getattr(r, f)) for f in RECORD_FIELDS)
            for r in report.records]


def run_both_modes(trace, profiles, **cfg):
    """Run single-engine and per-machine; assert bit-identity."""
    single = run_fleet(trace, FleetConfig(clock_domains="single", **cfg),
                       profiles=profiles)
    sharded = run_fleet(trace, FleetConfig(clock_domains="per-machine",
                                           **cfg), profiles=profiles)
    assert signature(single) == signature(sharded)
    assert single.summary() == sharded.summary()
    return single


def test_fleet_serves_and_warms_the_pool():
    profiles = {"f": prof("f", image=256 << 20)}
    trace = make_trace([(0.0, "f"), (5.0, "f"), (10.0, "f")])
    report = run_both_modes(trace, profiles, n_machines=1, n_gpus=2)
    assert report.completed == 3
    first, second, third = report.records
    assert not first.warm and second.warm and third.warm
    # A warm serve skips the image fetch.
    assert second.cold_start_s < first.cold_start_s
    assert second.restore_s < first.restore_s
    assert report.pool_hit_rate() == pytest.approx(2 / 3)
    assert report.goodput_rps() > 0
    tail = report.tail()
    assert tail["p50"] <= tail["p99"] <= tail["p999"]


def test_fleet_run_is_deterministic():
    profiles = {"f": prof("f"), "g": prof("g", exec_s=1.5)}
    trace = make_trace([(0.0, "f"), (0.1, "g"), (0.2, "f"), (1.0, "g")])
    cfg = FleetConfig(n_machines=2, n_gpus=1)
    a = run_fleet(trace, cfg, profiles=profiles)
    b = run_fleet(trace, cfg, profiles=profiles)
    assert signature(a) == signature(b)
    assert a.summary() == b.summary()


def test_admission_control_rejects_at_queue_cap():
    # One 1-GPU machine, 10 s service: of six simultaneous arrivals one
    # dispatches, two queue, three bounce off the cap.
    profiles = {"f": prof("f", exec_s=10.0)}
    trace = make_trace([(0.0, "f")] * 6)
    report = run_both_modes(trace, profiles, n_machines=1, n_gpus=1,
                            queue_cap=2)
    assert report.completed == 3
    assert report.rejected == 3
    outcomes = [r.outcome for r in report.records]
    assert outcomes.count("rejected") == 3
    assert report.max_queue_depth() == 2
    assert report.mean_queue_depth() > 0
    # Rejected rows carry NaN latencies but never poison the tail.
    assert len(report.cold_start_samples()) == 3


def test_unsupported_functions_are_refused_up_front():
    profiles = {"ok": prof("ok"), "big": prof("big", supported=False)}
    trace = make_trace([(0.0, "ok"), (0.1, "big"), (0.2, "ok")])
    report = run_both_modes(trace, profiles, n_machines=1, n_gpus=1,
                            system="cuda-checkpoint")
    assert report.completed == 2
    assert report.unsupported == 1
    assert report.records[1].outcome == "unsupported"
    # NaN-checked: the unsupported row is excluded, not folded in.
    assert len(report.cold_start_samples()) == 2
    assert report.summary()["p99_ms"] is not None


def test_best_fit_packs_small_jobs_onto_fullest_machine():
    # node0 gets the 3-GPU job; the following 1-GPU jobs best-fit into
    # node0's single remaining GPU before touching node1.
    profiles = {"w3": prof("w3", n_gpus=3, exec_s=20.0),
                "w1": prof("w1", n_gpus=1, exec_s=20.0)}
    trace = make_trace([(0.0, "w3"), (0.1, "w1"), (0.2, "w1")])
    report = run_both_modes(trace, profiles, n_machines=2, n_gpus=4)
    by_fn = {}
    for r in report.records:
        by_fn.setdefault(r.function, []).append(r.machine)
    assert by_fn["w3"] == ["node0"]
    assert by_fn["w1"] == ["node0", "node1"]


def test_migration_unblocks_a_stranded_head():
    # Fragmentation: s5 + s1short fill node0, s1long lands on node1,
    # and the 6-GPU head fits nowhere.  Once s1short frees a GPU the
    # gateway migrates s1long into it and places big6 on node1.
    profiles = {
        "s5": prof("s5", n_gpus=5, exec_s=30.0),
        "s1short": prof("s1short", n_gpus=1, exec_s=0.5),
        "s1long": prof("s1long", n_gpus=1, exec_s=30.0, downtime=0.2),
        "big6": prof("big6", n_gpus=6, exec_s=1.0),
    }
    arrivals = [(0.0, "s5"), (0.0, "s1short"), (0.0, "s1long"),
                (0.0, "big6")]
    report = run_both_modes(make_trace(arrivals), profiles,
                            n_machines=2, n_gpus=6)
    assert report.migrations == 1
    victim = report.records[2]
    assert victim.function == "s1long"
    assert victim.migrations == 1
    assert victim.machine == "node0"  # moved off node1
    big6 = report.records[3]
    assert big6.outcome == "ok"
    assert big6.machine == "node1"
    assert big6.end < 5.0
    # Migration pays the victim the calibrated downtime.
    assert victim.end > 30.0 + profiles["s1long"].migration_downtime_s

    # Without migration the head waits for s5's 30 s slot instead.
    blocked = run_both_modes(make_trace(arrivals), profiles,
                             n_machines=2, n_gpus=6, migration=False)
    assert blocked.migrations == 0
    assert blocked.records[3].end > 25.0


def test_baselines_never_migrate():
    profiles = {
        "s5": prof("s5", n_gpus=5, exec_s=30.0, system="singularity"),
        "s1short": prof("s1short", n_gpus=1, exec_s=0.5,
                        system="singularity"),
        "s1long": prof("s1long", n_gpus=1, exec_s=30.0,
                       system="singularity"),
        "big6": prof("big6", n_gpus=6, exec_s=1.0, system="singularity"),
    }
    arrivals = [(0.0, "s5"), (0.0, "s1short"), (0.0, "s1long"),
                (0.0, "big6")]
    report = run_both_modes(make_trace(arrivals), profiles,
                            n_machines=2, n_gpus=6, system="singularity",
                            migration=True)
    assert report.migrations == 0
    assert report.records[3].end > 25.0


def test_machine_failures_requeue_and_retry():
    profiles = {"f": prof("f", exec_s=2.0)}
    trace = generate(TraceConfig(kind="poisson", rate=2.0, duration=30.0,
                                 seed=4, functions=("f",)))
    report = run_both_modes(trace, profiles, n_machines=2, n_gpus=2,
                            failures_per_hour=3600.0, recovery_s=1.0,
                            failure_seed=7, max_retries=2)
    assert report.machine_failures > 0
    assert report.retries > 0
    # Conservation: every request has exactly one final outcome.
    total = (report.completed + report.rejected + report.unsupported
             + report.failed)
    assert total == len(trace)
    # A requeued victim restores cold on the surviving machine: its
    # cold start is a fresh fetch+restore, never a stale partial time.
    retried_ok = [r for r in report.records
                  if r.outcome == "ok" and r.retries > 0]
    assert retried_ok, "expected at least one successful retry"
    for r in retried_ok:
        assert r.end > r.start


def test_retry_budget_exhaustion_fails_the_request():
    # One machine that is down more often than up: some request burns
    # its whole retry budget and fails for good.
    profiles = {"f": prof("f", exec_s=5.0)}
    trace = generate(TraceConfig(kind="poisson", rate=1.0, duration=30.0,
                                 seed=6, functions=("f",)))
    report = run_both_modes(trace, profiles, n_machines=1, n_gpus=1,
                            failures_per_hour=7200.0, recovery_s=2.0,
                            failure_seed=3, max_retries=0)
    assert report.failed > 0
    failed = [r for r in report.records if r.outcome == "failed"]
    assert all(r.retries > 0 for r in failed)
    assert report.completed + report.rejected + report.failed == len(trace)


def test_context_pool_miss_pays_the_creation_barrier():
    # One context slot, slow background refill (nopool - start = 9.9 s):
    # the second invocation misses the context pool and pays nopool.
    profiles = {"f": prof("f", start=0.1, nopool=10.0, exec_s=0.2)}
    trace = make_trace([(0.0, "f"), (0.0, "f")])
    report = run_both_modes(trace, profiles, n_machines=1, n_gpus=1,
                            contexts_per_gpu=1)
    assert (report.context_hits, report.context_misses) == (1, 1)
    first, second = report.records
    assert first.pooled_ctx and not second.pooled_ctx
    assert second.restore_s > first.restore_s + 9.0


def test_run_fleet_rejects_bad_inputs():
    trace = make_trace([(0.0, "f"), (1.0, "g")])
    with pytest.raises(InvalidValueError) as err:
        run_fleet(trace, FleetConfig(), profiles={"f": prof("f")})
    assert "no profile" in str(err.value)
    profiles = {"f": prof("f"), "g": prof("g", n_gpus=16)}
    with pytest.raises(InvalidValueError) as err:
        run_fleet(trace, FleetConfig(n_gpus=8), profiles=profiles)
    assert "never be placed" in str(err.value)
