"""Fleet experiment bit-identity across ``--jobs`` counts.

The fig_fleet cells calibrate their own profiles with real protocol
probes inside each worker process; the probes run on a virtual clock,
so every worker measures the identical numbers and the merged report
must be byte-for-byte the same at any parallelism.  CI runs this file
with the fast path both on and off (``REPRO_NO_FASTPATH``).

Kept to one small single-GPU function and short traces: the point is
the merge/aggregation determinism, not fleet behaviour (that is
``tests/test_fleet.py``).
"""

import pytest

from repro.experiments import fig_fleet

FAST_KWARGS = dict(
    kinds=("bursty",),
    seeds=(1, 2),
    systems=("phos", "singularity"),
    functions=("resnet152-infer",),
    duration=20.0,
    rate=2.0,
)


@pytest.fixture(scope="module")
def serial_result():
    return fig_fleet.run(jobs=1, **FAST_KWARGS)


def test_parallel_matches_serial_bit_for_bit(serial_result):
    parallel = fig_fleet.run(jobs=4, **FAST_KWARGS)
    assert parallel.rows == serial_result.rows
    assert parallel.format() == serial_result.format()


def test_rows_cover_every_cell_plus_pooled(serial_result):
    rows = serial_result.rows
    per_seed = [r for r in rows if r["seed"] != "all"]
    pooled = [r for r in rows if r["seed"] == "all"]
    assert len(per_seed) == 4  # 2 seeds x 2 systems
    assert {r["system"] for r in pooled} == {"phos", "singularity"}
    for r in per_seed:
        assert r["completed"] > 0
        assert r["p99_ms"] is not None and r["p99_ms"] > 0


def test_pooled_tail_is_seed_order_invariant(serial_result):
    reversed_seeds = fig_fleet.run(jobs=1, **{**FAST_KWARGS,
                                              "seeds": (2, 1)})
    pooled_a = {r["system"]: r for r in serial_result.rows
                if r["seed"] == "all"}
    pooled_b = {r["system"]: r for r in reversed_seeds.rows
                if r["seed"] == "all"}
    for system in ("phos", "singularity"):
        for key in ("p50_ms", "p99_ms", "p999_ms", "completed", "requests"):
            assert pooled_a[system][key] == pooled_b[system][key]


def test_clock_domain_modes_agree_end_to_end():
    sharded = fig_fleet.run(jobs=1, clock_domains="per-machine",
                            **FAST_KWARGS)
    single = fig_fleet.run(jobs=1, clock_domains="single", **FAST_KWARGS)
    assert sharded.rows == single.rows
