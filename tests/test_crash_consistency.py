"""Crash-consistency hardening: chaos injection, atomic commit, retries.

The matrix itself (`repro.chaos.matrix`) asserts the two-outcome
contract — committed-and-bit-identical or cleanly-aborted — for every
(protocol, fault) cell; the sweep tests here run it end to end at two
seeds.  The unit tests around it pin the individual mechanisms: the
two-phase image commit, the torn-image detection, capped retry with
surfaced counters, mid-flight kill teardown, graceful context-pool
degradation, and the daemon API fixes (``gpu_indices=[]``,
``checkpoint_consistent`` failure naming).
"""

import io
from contextlib import redirect_stdout

import pytest

from repro import chaos, obs, units
from repro.api.runtime import GpuProcess
from repro.chaos import FaultPlan, FaultSpec
from repro.chaos.matrix import sweep
from repro.cluster import Machine
from repro.core.cli import main as cli_main
from repro.core.context_pool import ContextPool
from repro.core.daemon import Phos
from repro.core.retry import RetryPolicy
from repro.errors import (
    CheckpointError,
    DmaError,
    InvalidValueError,
    TornImageError,
)
from repro.gpu.context import GpuContext
from repro.sim import Engine
from repro.units import MIB

from tests.toyapp import ToyApp, image_gpu_state, snapshot_process


@pytest.fixture(autouse=True)
def _chaos_clean():
    """No fault plan leaks between tests, whatever a test does."""
    chaos.uninstall()
    yield
    chaos.uninstall()


def make_world(n_gpus=1, **toyapp_kwargs):
    eng = Engine()
    machine = Machine(eng, n_gpus=n_gpus)
    phos = Phos(eng, machine, use_context_pool=False)
    process = GpuProcess(eng, machine, name="app", gpu_indices=[0],
                         cpu_pages=8)
    process.runtime.adopt_context(0, GpuContext(gpu_index=0))
    phos.attach(process)
    app = ToyApp(process, **toyapp_kwargs)
    return eng, machine, phos, process, app


def assert_no_dma_leaks(machine):
    for gpu in machine.gpus:
        assert list(gpu.dma.pool.iter_users()) == []
        assert list(gpu.dma.pool.iter_waiting()) == []


# -- the matrix, end to end --------------------------------------------------------

@pytest.mark.parametrize("seed", [1, 2])
def test_crash_consistency_matrix(seed):
    """Kill-at-every-phase × every protocol: two outcomes only."""
    result = sweep(seed=seed)
    assert result.cells, "sweep produced no cells"
    assert result.ok, "\n" + result.render()
    # Every phase-targeted fault actually fired (no silently-vacuous
    # cells); only seed-sampled occurrences may miss.
    for cell in result.cells:
        if "@" in cell.fault:
            assert cell.injected >= 1, cell.label


def test_cli_chaos_subcommand_smoke():
    buf = io.StringIO()
    with redirect_stdout(buf):
        rc = cli_main([
            "chaos", "--quiet", "--seed", "1",
            "--checkpoint-protocol", "cow",
            "--restore-protocol", "concurrent",
        ])
    assert rc == 0
    assert "cells ok" in buf.getvalue()


# -- atomic image commit -----------------------------------------------------------

def test_aborted_checkpoint_never_commits_its_image():
    """Two-phase commit: a crash before phase_commit leaves the staged
    image revoked — invisible to the catalog and unrestorable."""
    eng, machine, phos, process, app = make_world()
    from repro.core.protocols import registry

    protocol = registry.create("cow")
    chaos.install(FaultPlan(faults=(
        FaultSpec(kind="crash-checkpointer", protocol="cow",
                  phase="transfer"),
    )), engine=eng, killer=phos.kill)

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        gen = protocol.checkpoint(
            eng, process=process, frontend=phos.frontend_of(process),
            medium=phos.medium, criu=phos.criu, name="doomed",
        )
        try:
            yield from gen
        except CheckpointError as err:
            return err
        return None

    err = eng.run_process(driver(eng))
    eng.run()
    chaos.uninstall()
    assert err is not None and "chaos" in str(err)
    catalog = phos.medium.images
    assert catalog.committed_images() == []
    assert catalog.staged_images() == []
    doomed = protocol.last_context.image
    assert doomed.revoked
    assert not catalog.is_committed(doomed)
    with pytest.raises(TornImageError):
        doomed.require_finalized()
    assert_no_dma_leaks(machine)
    # The frontend is back in pass-through mode and the app still runs.
    assert phos.frontend_of(process).ckpt_session is None

    def epilogue(eng):
        yield from app.run(1, start=2)
        image, _ = yield phos.checkpoint(process, mode="cow", name="clean")
        return image

    image = eng.run_process(epilogue(eng))
    eng.run()
    assert image.finalized
    assert catalog.is_committed(image)


def test_committed_image_visible_and_restorable():
    eng, machine, phos, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        image, _ = yield phos.checkpoint(process, mode="cow", name="ok")
        expected = image_gpu_state(image)
        phos.kill(process)
        new_process, _f, session = yield from phos.restore(
            image, gpu_indices=[0], concurrent=True,
        )
        yield session.done
        got, _ = snapshot_process(new_process)
        return image, expected, got

    image, expected, got = eng.run_process(driver(eng))
    eng.run()
    assert phos.medium.images.is_committed(image)
    assert expected == got


def test_revoked_image_refuses_restore():
    eng, machine, phos, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        yield from app.run(1)
        image, _ = yield phos.checkpoint(process, mode="cow", name="r")
        return image

    image = eng.run_process(driver(eng))
    eng.run()
    image.revoke("test: torn")
    with pytest.raises(TornImageError, match="torn"):
        eng.run_process(phos.restore(image, gpu_indices=[0]))


# -- retry with capped backoff -----------------------------------------------------

def test_transient_dma_error_is_retried_and_counted():
    eng, machine, phos, process, app = make_world()
    observer = obs.install(eng)
    try:
        chaos.install(FaultPlan(faults=(
            FaultSpec(kind="dma-error", occurrence=1, count=1),
        )), engine=eng)

        def driver(eng):
            yield from app.setup()
            yield from app.run(2)
            image, session = yield phos.checkpoint(process, mode="cow")
            return image, session

        image, session = eng.run_process(driver(eng))
        eng.run()
        chaos.uninstall()
        assert image.finalized
        assert session is None or not session.aborted
        retries = sum(c.value for c in observer.metrics.find(
            "protocol/retries"))
        injected = sum(c.value for c in observer.metrics.find(
            "chaos/injected"))
        assert retries >= 1
        assert injected >= 1
        assert_no_dma_leaks(machine)
    finally:
        obs.uninstall()


def test_retry_exhaustion_aborts_cleanly():
    eng, machine, phos, process, app = make_world()
    observer = obs.install(eng)
    try:
        # More consecutive failures than max_retries allows attempts.
        chaos.install(FaultPlan(faults=(
            FaultSpec(kind="dma-error", occurrence=1, count=20),
        )), engine=eng)

        def driver(eng):
            yield from app.setup()
            yield from app.run(2)
            try:
                yield phos.checkpoint(process, mode="cow")
            except DmaError as err:
                return err
            return None

        err = eng.run_process(driver(eng))
        eng.run()
        chaos.uninstall()
        assert isinstance(err, DmaError)
        aborts = sum(c.value for c in observer.metrics.find(
            "protocol/aborts"))
        assert aborts >= 1
        assert phos.medium.images.committed_images() == []
        assert_no_dma_leaks(machine)
        assert phos.frontend_of(process).ckpt_session is None
    finally:
        obs.uninstall()


def test_retry_backoff_is_capped_exponential():
    eng = Engine()
    calls = {"n": 0}

    def make_gen():
        def attempt():
            calls["n"] += 1
            if calls["n"] <= 8:
                raise DmaError("transient")
            return "done"
            yield  # pragma: no cover - makes this a generator

        return attempt()

    policy = RetryPolicy(max_retries=8, backoff=1 * units.MSEC)

    def driver(eng):
        result = yield from policy.run(eng, make_gen, site="test")
        return result

    t0 = eng.now
    result = eng.run_process(driver(eng))
    eng.run()
    assert result == "done"
    # 8 failures with base 1 ms and cap factor 32: the total backoff is
    # 1+2+4+8+16+32+32+32 = 127 ms, not 1+2+...+128 = 255 ms.
    assert eng.now - t0 == pytest.approx(127 * units.MSEC)


# -- kill mid-flight (satellite: Phos.kill leaks in-flight work) ------------------

def test_kill_cancels_inflight_checkpoint():
    eng, machine, phos, process, _ = make_world()
    # Big buffers: the checkpoint is guaranteed still in flight.
    app = ToyApp(process, buf_size=256 * MIB, kernel_flops=1e9)

    def driver(eng):
        yield from app.setup()
        yield from app.run(1)
        handle = phos.checkpoint(process, mode="cow", name="doomed")
        # Let the protocol get into its transfer phase.
        yield eng.timeout(1 * units.MSEC)
        assert not handle.triggered
        phos.kill(process)
        failed = None
        try:
            yield handle
        except CheckpointError as err:
            failed = err
        return handle, failed

    handle, failed = eng.run_process(driver(eng))
    eng.run()
    assert handle.triggered
    assert failed is not None and "killed" in str(failed)
    assert phos._inflight == {}
    assert machine.gpu(0).memory.used == 0
    assert_no_dma_leaks(machine)
    assert phos.medium.images.committed_images() == []


def test_kill_without_inflight_work_still_works():
    eng, machine, phos, process, app = make_world()

    def driver(eng):
        yield from app.setup()

    eng.run_process(driver(eng))
    phos.kill(process)
    assert machine.gpu(0).memory.used == 0


# -- daemon API fixes --------------------------------------------------------------

def test_restore_rejects_explicit_empty_gpu_indices():
    eng, machine, phos, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        yield from app.run(1)
        image, _ = yield phos.checkpoint(process, mode="cow")
        return image

    image = eng.run_process(driver(eng))
    eng.run()
    with pytest.raises(InvalidValueError, match=r"gpu_indices=\[\]"):
        next(iter(phos.restore(image, gpu_indices=[])))
    # None still means "from the image metadata".
    phos.kill(process)
    new_process, _f, session = eng.run_process(
        phos.restore(image, gpu_indices=None))
    eng.run()
    assert new_process.gpu_indices == [0]


def test_checkpoint_consistent_rejects_blank_name_and_empty_set():
    eng, machine, phos, process, app = make_world()
    with pytest.raises(InvalidValueError, match="at least one process"):
        phos.checkpoint_consistent([])
    with pytest.raises(InvalidValueError, match="whitespace-only"):
        phos.checkpoint_consistent([process], name="   ")


def test_consistent_checkpoint_failure_names_process_and_revokes_siblings():
    eng = Engine()
    machine = Machine(eng, n_gpus=2)
    phos = Phos(eng, machine, use_context_pool=False)
    apps = []
    procs = []
    for idx, name in enumerate(["alpha", "beta"]):
        p = GpuProcess(eng, machine, name=name, gpu_indices=[idx],
                       cpu_pages=8)
        p.runtime.adopt_context(idx, GpuContext(gpu_index=idx))
        phos.attach(p)
        app = ToyApp(p, gpu_index=idx)
        procs.append(p)
        apps.append(app)

    # Crash exactly one of the per-process CoW runs.
    chaos.install(FaultPlan(faults=(
        FaultSpec(kind="crash-checkpointer", protocol="cow",
                  phase="transfer", occurrence=1),
    )), engine=eng, killer=phos.kill)

    def driver(eng):
        for app in apps:
            yield from app.setup()
            yield from app.run(1)
        handle = phos.checkpoint_consistent(procs, name="group")
        try:
            yield handle
        except CheckpointError as err:
            return err
        return None

    err = eng.run_process(driver(eng))
    eng.run()
    chaos.uninstall()
    assert err is not None
    assert "consistent checkpoint failed for process(es)" in str(err)
    assert "alpha" in str(err) or "beta" in str(err)
    # No image of the group survives as restorable: the failed run's
    # image was discarded and the surviving sibling's was revoked.
    catalog = phos.medium.images
    assert catalog.committed_images() == []
    assert catalog.staged_images() == []
    assert_no_dma_leaks(machine)


# -- context-pool degradation ------------------------------------------------------

def test_refill_failure_is_counted_not_silent():
    eng = Engine()
    machine = Machine(eng, n_gpus=1)
    pool = ContextPool(eng, machine, contexts_per_gpu=2)
    observer = obs.install(eng)
    try:
        eng.run_process(pool.prefill())
        assert pool.available(0) == 2
        # Every later creation fails: the background refill must retry,
        # give up loudly, and leave the hand-out path working.
        chaos.install(FaultPlan(faults=(
            FaultSpec(kind="context-error", occurrence=1, count=50),
        )), engine=eng)

        from repro.gpu.context import ContextRequirements

        reqs = ContextRequirements(n_modules=0, use_cublas=True,
                                   nccl_gpus=0)

        def driver(eng):
            ctx = yield from pool.acquire(0, reqs)
            return ctx

        ctx = eng.run_process(driver(eng))
        eng.run()  # lets the background refill run (and fail)
        chaos.uninstall()
        assert ctx is not None
        assert pool.hits == 1
        assert pool.refill_failures == 1
        failed = sum(c.value for c in observer.metrics.find(
            "context-pool/refill-failed"))
        assert failed >= 1  # one count per failed attempt
    finally:
        obs.uninstall()


def test_pool_acquire_falls_back_to_direct_creation():
    """An exhausted-and-failing pool degrades the restore to direct
    context creation instead of failing it."""
    eng = Engine()
    machine = Machine(eng, n_gpus=1)
    phos = Phos(eng, machine, use_context_pool=True)
    eng.run_process(phos.boot())
    process = GpuProcess(eng, machine, name="app", gpu_indices=[0],
                         cpu_pages=8)
    process.runtime.adopt_context(0, GpuContext(gpu_index=0))
    phos.attach(process)
    app = ToyApp(process)
    observer = obs.install(eng)
    try:
        def driver(eng):
            yield from app.setup()
            yield from app.run(1)
            image, _ = yield phos.checkpoint(process, mode="cow")
            phos.kill(process)
            # Drain the pool so the restore's acquire is a miss, then
            # make miss-path creation fail once: the fallback + retry
            # must still complete the restore.
            from repro.gpu.context import ContextRequirements

            reqs = ContextRequirements(n_modules=0, use_cublas=True)
            phos.pool.refill = False  # keep the drain finite
            while pool_available() > 0:
                yield from phos.pool.acquire(0, reqs)
            chaos.install(FaultPlan(faults=(
                FaultSpec(kind="context-error", occurrence=1, count=1),
            )), engine=eng, killer=phos.kill)
            new_process, _f, session = yield from phos.restore(
                image, gpu_indices=[0], concurrent=True,
            )
            chaos.uninstall()
            yield session.done
            return image, new_process

        def pool_available():
            return phos.pool.available(0)

        image, new_process = eng.run_process(driver(eng))
        eng.run()
        expected = image_gpu_state(image)
        got, _ = snapshot_process(new_process)
        assert expected == got
    finally:
        obs.uninstall()


# -- fault-tolerance controller: real mid-checkpoint kills -------------------------

def test_ft_controller_survives_mid_checkpoint_kills():
    from repro.apps.base import provision
    from repro.apps.specs import get_spec
    from repro.tasks.ft_controller import FaultToleranceController

    eng = Engine()
    spec = get_spec("resnet152-train")
    machine = Machine(eng, n_gpus=spec.n_gpus)
    phos = Phos(eng, machine, use_context_pool=False)
    process, workload = provision(eng, machine, spec)
    phos.attach(process)
    controller = FaultToleranceController(
        eng, phos, process, workload,
        failures_per_hour=2500.0, checkpoint_every_iters=3, seed=11,
        mid_checkpoint_kills=True,
    )

    def driver(eng):
        yield from workload.setup()
        result = yield from controller.run(20)
        return result

    result = eng.run_process(driver(eng))
    eng.run()
    assert result.failures >= 1
    # The run completed despite checkpoints being torn down mid-flight.
    assert result.wall_seconds > 0
    assert_no_dma_leaks(machine)
    if result.mid_checkpoint_kills:
        # Torn checkpoints never became the restore point.
        assert controller.latest_image is None or \
            controller.latest_image.finalized
