"""Unit tests for the CUDA-equivalent runtime."""

import pytest

from repro.api.calls import ApiCategory, LaunchPlan
from repro.api.runtime import API_CALL_OVERHEAD, GpuProcess, mix_into
from repro.errors import GpuError, InvalidValueError
from repro.gpu.context import GpuContext
from repro.gpu.cost_model import KernelCost
from repro.gpu.program import build_fill, build_scale
from repro.units import GIB, MIB


def run(eng, gen):
    return eng.run_process(gen)


def test_malloc_registers_allocation(eng, process):
    def app(rt):
        buf = yield from rt.malloc(0, 1 * MIB, tag="w")
        return buf

    buf = run(eng, app(process.runtime))
    assert buf.tag == "w"
    assert buf in process.runtime.allocations[0]


def test_free_unregisters(eng, process):
    def app(rt):
        buf = yield from rt.malloc(0, 1 * MIB)
        yield from rt.free(0, buf)

    run(eng, app(process.runtime))
    assert process.runtime.allocations[0] == []


def test_malloc_on_unowned_gpu_rejected(eng, process):
    def app(rt):
        yield from rt.malloc(1, 1 * MIB)

    with pytest.raises(InvalidValueError):
        run(eng, app(process.runtime))


def test_kernel_requires_context(eng, machine):
    proc = GpuProcess(eng, machine, name="noctx", gpu_indices=[0])

    def app(rt):
        buf = yield from rt.malloc(0, 512)
        yield from rt.launch_kernel(0, build_fill(), [buf.addr, 4, 1], 4)

    with pytest.raises(GpuError, match="context"):
        run(eng, app(proc.runtime))


def test_launch_kernel_mutates_buffer(eng, process):
    def app(rt):
        buf = yield from rt.malloc(0, 512)
        yield from rt.launch_kernel(0, build_fill(), [buf.addr, 4, 9], 4, sync=True)
        return buf

    buf = run(eng, app(process.runtime))
    assert buf.load_word(buf.addr) == 9


def test_kernel_duration_scales_with_cost(eng, process):
    def app(rt, flops):
        buf = yield from rt.malloc(0, 512)
        t0 = rt.engine.now
        yield from rt.launch_kernel(
            0, build_fill(), [buf.addr, 4, 1], 4,
            cost=KernelCost(flops=flops), sync=True,
        )
        return rt.engine.now - t0

    small = run(eng, app(process.runtime, 1e12))
    # Fresh engine/process for independent timing.
    from repro.cluster import Machine
    from repro.sim import Engine

    eng2 = Engine()
    m2 = Machine(eng2, n_gpus=1)
    p2 = GpuProcess(eng2, m2, name="p2", gpu_indices=[0])
    p2.runtime.adopt_context(0, GpuContext(gpu_index=0))
    big = eng2.run_process(app(p2.runtime, 4e12))
    assert big > small


def test_first_launch_charges_module_load(eng, process):
    prog = build_fill()

    def app(rt):
        buf = yield from rt.malloc(0, 512)
        t0 = rt.engine.now
        yield from rt.launch_kernel(0, prog, [buf.addr, 4, 1], 4, sync=True)
        first = rt.engine.now - t0
        t1 = rt.engine.now
        yield from rt.launch_kernel(0, prog, [buf.addr, 4, 1], 4, sync=True)
        second = rt.engine.now - t1
        return first, second

    first, second = run(eng, app(process.runtime))
    assert first > second  # JIT/module load charged once


def test_memcpy_h2d_fills_buffer(eng, process):
    def app(rt):
        buf = yield from rt.malloc(0, 1 * MIB)
        yield from rt.memcpy_h2d(0, buf, payload=7, sync=True)
        return buf

    buf = run(eng, app(process.runtime))
    assert buf.load_word(buf.addr) == 7


def test_memcpy_h2d_bytes_payload(eng, process):
    def app(rt):
        buf = yield from rt.malloc(0, 512)
        yield from rt.memcpy_h2d(0, buf, payload=bytes(range(16)), sync=True)
        return buf

    buf = run(eng, app(process.runtime))
    assert buf.snapshot()[:16] == bytes(range(16))


def test_memcpy_d2h_returns_content(eng, process):
    def app(rt):
        buf = yield from rt.malloc(0, 512)
        yield from rt.memcpy_h2d(0, buf, payload=5, sync=True)
        data = yield from rt.memcpy_d2h(0, buf)
        return data, buf

    data, buf = run(eng, app(process.runtime))
    assert data == buf.snapshot()


def test_memcpy_timing_matches_pcie(eng, process):
    def app(rt):
        buf = yield from rt.malloc(0, 1 * GIB)
        t0 = rt.engine.now
        yield from rt.memcpy_h2d(0, buf, sync=True)
        return rt.engine.now - t0

    elapsed = run(eng, app(process.runtime))
    expected = (1 * GIB) / process.gpu(0).spec.pcie_bw
    assert elapsed == pytest.approx(expected, rel=0.01)


def test_memcpy_d2d_copies_prefix(eng, process):
    def app(rt):
        a = yield from rt.malloc(0, 512)
        b = yield from rt.malloc(0, 512)
        yield from rt.memcpy_h2d(0, a, payload=3, sync=True)
        yield from rt.memcpy_d2d(0, a, b, sync=True)
        return a, b

    a, b = run(eng, app(process.runtime))
    assert a.snapshot() == b.snapshot()


def test_async_launch_returns_before_completion(eng, process):
    def app(rt):
        buf = yield from rt.malloc(0, 512)
        op = yield from rt.launch_kernel(
            0, build_fill(), [buf.addr, 4, 1], 4, cost=KernelCost(flops=1e12)
        )
        issued_at = rt.engine.now
        yield op.done
        done_at = rt.engine.now
        return issued_at, done_at

    issued_at, done_at = run(eng, app(process.runtime))
    assert done_at > issued_at


def test_device_synchronize_drains(eng, process):
    def app(rt):
        buf = yield from rt.malloc(0, 512)
        yield from rt.launch_kernel(
            0, build_fill(), [buf.addr, 4, 2], 4, cost=KernelCost(flops=1e12)
        )
        yield from rt.device_synchronize(0)
        return buf

    buf = run(eng, app(process.runtime))
    assert buf.load_word(buf.addr) == 2


def test_stop_cpu_blocks_api_calls(eng, process):
    rt = process.runtime
    times = {}

    def app(rt):
        yield from rt.malloc(0, 512)  # passes
        times["before"] = rt.engine.now
        yield from rt.malloc(0, 512)  # blocked by the gate
        times["after"] = rt.engine.now

    def controller(eng):
        rt.stop_cpu()
        yield eng.timeout(5.0)
        rt.resume_cpu()

    # Close gate after first call by interleaving: controller runs first.
    def orchestrate(eng):
        a = eng.spawn(app(rt))
        yield eng.timeout(0)
        rt.stop_cpu()
        yield eng.timeout(5.0)
        rt.resume_cpu()
        yield a

    eng.run_process(orchestrate(eng))
    assert times["after"] >= 5.0


def test_cpu_work_writes_pages(eng, process):
    def app(rt):
        yield from rt.cpu_work(1.0, write_pages=[2, 3], value=11)

    run(eng, app(process.runtime))
    assert process.host.memory.read_word(2) == 11
    assert process.host.memory.dirty_pages() == [2, 3]


def test_cpu_work_advances_pc(eng, process):
    pc0 = process.host.registers["pc"]

    def app(rt):
        yield from rt.cpu_work(0.5)

    run(eng, app(process.runtime))
    assert process.host.registers["pc"] == pc0 + 1


class _RecordingInterceptor:
    def __init__(self):
        self.calls = []
        self.mallocs = []
        self.frees = []

    def plan(self, call):
        self.calls.append(call)
        return LaunchPlan()

    def on_malloc(self, gpu_index, buf):
        self.mallocs.append(buf)

    def on_free(self, gpu_index, buf):
        self.frees.append(buf)


def test_interceptor_sees_all_calls(eng, process):
    rec = _RecordingInterceptor()
    process.runtime.interceptor = rec

    def app(rt):
        buf = yield from rt.malloc(0, 512)
        yield from rt.memcpy_h2d(0, buf, payload=1, sync=True)
        yield from rt.launch_kernel(0, build_scale(), [buf.addr, buf.addr, 4], 4, sync=True)
        yield from rt.free(0, buf)

    run(eng, app(process.runtime))
    categories = [c.category for c in rec.calls]
    assert categories == [
        ApiCategory.MALLOC,
        ApiCategory.MEMCPY_H2D,
        ApiCategory.OPAQUE_KERNEL,
        ApiCategory.FREE,
    ]
    assert len(rec.mallocs) == 1 and len(rec.frees) == 1


def test_interceptor_pre_exec_delays_kernel(eng, process):
    class DelayInterceptor(_RecordingInterceptor):
        def plan(self, call):
            if call.category is ApiCategory.OPAQUE_KERNEL:
                def pre():
                    yield call_engine.timeout(3.0)

                return LaunchPlan(pre_exec=pre)
            return LaunchPlan()

    call_engine = eng
    process.runtime.interceptor = DelayInterceptor()

    def app(rt):
        buf = yield from rt.malloc(0, 512)
        t0 = rt.engine.now
        yield from rt.launch_kernel(0, build_fill(), [buf.addr, 4, 1], 4, sync=True)
        return rt.engine.now - t0

    elapsed = run(eng, app(process.runtime))
    assert elapsed >= 3.0


def test_lib_compute_mixes_reads_into_writes(eng, process):
    def app(rt):
        a = yield from rt.malloc(0, 512)
        b = yield from rt.malloc(0, 512)
        c = yield from rt.malloc(0, 512)
        yield from rt.memcpy_h2d(0, a, payload=1, sync=True)
        yield from rt.memcpy_h2d(0, b, payload=2, sync=True)
        yield from rt.lib_compute(0, "gemm", reads=[a, b], writes=[c], sync=True)
        return a, b, c

    a, b, c = run(eng, app(process.runtime))
    assert c.snapshot() != bytes(c.data_size)  # written
    # Deterministic: same inputs same salt -> same mix.
    before = c.snapshot()
    mix_into(c, [a, b], salt=0)
    mix_into(c, [a, b], salt=0)
    assert c.snapshot() == c.snapshot()
    assert before != bytes(c.data_size)


def test_api_overhead_charged(eng, process):
    def app(rt):
        t0 = rt.engine.now
        yield from rt.malloc(0, 512)
        return rt.engine.now - t0

    elapsed = run(eng, app(process.runtime))
    assert elapsed == pytest.approx(API_CALL_OVERHEAD)
