"""Failure injection: kernel faults and engine errors during C/R."""

from repro.api.runtime import GpuProcess
from repro.cluster import Machine
from repro.core.daemon import Phos
from repro.core.quiesce import quiesce
from repro.errors import KernelFault
from repro.gpu.context import GpuContext
from repro.gpu.isa import ProgramBuilder
from repro.sim import Engine
from repro.units import MIB

from tests.toyapp import ToyApp, image_gpu_state, snapshot_process


def make_world(buf_size=4096, kernel_flops=5e9):
    eng = Engine()
    machine = Machine(eng, n_gpus=1)
    phos = Phos(eng, machine, use_context_pool=False)
    process = GpuProcess(eng, machine, name="app", gpu_indices=[0], cpu_pages=8)
    process.runtime.adopt_context(0, GpuContext(gpu_index=0))
    phos.attach(process)
    app = ToyApp(process, buf_size=buf_size, kernel_flops=kernel_flops)
    return eng, machine, phos, process, app


def crashing_kernel():
    """A kernel that dereferences an unmapped address."""
    b = ProgramBuilder("crasher", "__global__ void crasher(long* y, long n)")
    b.seti(0, 0xDEAD0000)
    b.ldg(1, 0)  # faults: unmapped
    b.exit()
    return b.build()


def test_kernel_fault_surfaces_to_the_caller():
    eng, machine, phos, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        try:
            yield from process.runtime.launch_kernel(
                0, crashing_kernel(), [app.bufs["out"].addr, 4], 4, sync=True
            )
        except Exception as err:
            return type(err).__name__
        return "no error"

    name = eng.run_process(driver(eng))
    assert name == "InvalidAddressError"


def test_kernel_fault_during_cow_does_not_corrupt_checkpoint():
    """An app kernel crashing mid-checkpoint must not damage the image
    — the checkpoint captures t1 regardless."""
    eng, machine, phos, process, app = make_world(buf_size=128 * MIB,
                                                  kernel_flops=1e9)
    state = {}

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        yield from quiesce(eng, [process])
        state["gpu"], _ = snapshot_process(process)
        handle = phos.checkpoint(process, mode="cow")
        # The app crashes one kernel during the copy window ...
        try:
            yield from process.runtime.launch_kernel(
                0, crashing_kernel(), [app.bufs["out"].addr, 4], 4, sync=True
            )
        except Exception:
            pass
        # ... and keeps going.
        yield from app.run(2, start=2)
        image, session = yield handle
        return image, session

    image, session = eng.run_process(driver(eng))
    eng.run()
    assert not session.aborted
    got = image_gpu_state(image)
    for key in state["gpu"]:
        assert got[key] == state["gpu"][key]


def test_runaway_kernel_fault_during_checkpoint():
    eng, machine, phos, process, app = make_world(buf_size=64 * MIB,
                                                  kernel_flops=1e9)
    spin = ProgramBuilder("spin", "__global__ void spin(long* y, long n)")
    spin.label("top").jmp("top").exit()
    spin_prog = spin.build()

    def driver(eng):
        yield from app.setup()
        handle = phos.checkpoint(process, mode="cow")
        try:
            yield from process.runtime.launch_kernel(
                0, spin_prog, [app.bufs["out"].addr, 4], 4, sync=True
            )
        except KernelFault:
            pass
        image, session = yield handle
        return image, session

    image, session = eng.run_process(driver(eng))
    eng.run()
    assert image.finalized


def test_failed_op_does_not_wedge_the_stream_under_checkpoint():
    """After a kernel fault, subsequent work and checkpoints proceed."""
    eng, machine, phos, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        try:
            yield from process.runtime.launch_kernel(
                0, crashing_kernel(), [app.bufs["out"].addr, 4], 4, sync=True
            )
        except Exception:
            pass
        yield from app.run(2)
        image, session = yield phos.checkpoint(process, mode="recopy")
        return image, session

    image, session = eng.run_process(driver(eng))
    eng.run()
    assert image.finalized
