"""§4.1/§8.2: the API-category mix of real workloads.

The paper's speculation design leans on an empirical fact: "over 50% of
invocations" are category 1-3 APIs whose read/write sets come from
specifications, leaving speculation + validation for the opaque
minority.  These tests verify our workload models reproduce that mix.
"""

import pytest

from repro.api.calls import ApiCategory, LaunchPlan
from repro.experiments.harness import build_world, run_steps, setup_app


class CountingInterceptor:
    def __init__(self):
        self.counts = {}

    def plan(self, call):
        self.counts[call.category] = self.counts.get(call.category, 0) + 1
        return LaunchPlan()

    def on_malloc(self, gpu_index, buf):
        pass

    def on_free(self, gpu_index, buf):
        return False


def category_mix(app):
    world = build_world(app)
    setup_app(world, warm=1)
    counter = CountingInterceptor()
    world.process.runtime.interceptor = counter
    run_steps(world, 2)
    return counter.counts


@pytest.mark.parametrize("app", ["resnet152-train", "llama2-13b-infer"])
def test_declared_semantics_majority(app):
    counts = category_mix(app)
    declared = sum(n for cat, n in counts.items()
                   if cat.has_declared_semantics)
    opaque = counts.get(ApiCategory.OPAQUE_KERNEL, 0)
    total = declared + opaque
    assert declared / total > 0.5  # the paper's ">50%" observation
    assert opaque > 0              # but opaque kernels do occur


def test_training_mix_has_all_kernel_categories():
    world = build_world("llama2-13b-train")
    setup_app(world, warm=1)
    counter = CountingInterceptor()
    world.process.runtime.interceptor = counter
    run_steps(world, 1)
    assert counter.counts[ApiCategory.MEMCPY_H2D] > 0   # type 1
    assert counter.counts[ApiCategory.COMM] > 0         # type 2
    assert counter.counts[ApiCategory.LIB_COMPUTE] > 0  # type 3
    assert counter.counts[ApiCategory.OPAQUE_KERNEL] > 0  # type 4


def test_category_taxonomy_flags():
    assert ApiCategory.MEMCPY_H2D.has_declared_semantics
    assert ApiCategory.COMM.has_declared_semantics
    assert ApiCategory.LIB_COMPUTE.has_declared_semantics
    assert not ApiCategory.OPAQUE_KERNEL.has_declared_semantics
    assert not ApiCategory.MALLOC.has_declared_semantics
