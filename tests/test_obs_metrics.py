"""Unit tests for the observability metric instruments."""

import pytest

from repro import obs
from repro.errors import SimulationError
from repro.obs.metrics import NULL_INSTRUMENT, Registry
from repro.sim import Engine


@pytest.fixture
def eng():
    return Engine()


@pytest.fixture(autouse=True)
def _no_observer_leak():
    yield
    obs.uninstall()


def advance(eng, dt):
    """Move the virtual clock forward by dt."""
    def proc(eng):
        yield eng.timeout(dt)

    eng.run_process(proc(eng))


# --- counters -----------------------------------------------------------------


def test_counter_accumulates(eng):
    reg = Registry(eng)
    c = reg.counter("bytes", direction="d2h")
    c.inc(100)
    c.inc(50)
    assert c.value == 150
    assert c.full_name == "bytes{direction=d2h}"


def test_counter_rejects_decrease(eng):
    c = Registry(eng).counter("bytes")
    with pytest.raises(SimulationError):
        c.inc(-1)


# --- gauges -------------------------------------------------------------------


def test_gauge_time_integral_and_average(eng):
    reg = Registry(eng)
    g = reg.gauge("in-use")
    g.set(2)          # level 2 from t=0
    advance(eng, 3.0)
    g.set(1)          # level 1 from t=3
    advance(eng, 1.0)
    g.set(0)          # level 0 from t=4
    advance(eng, 1.0)
    # integral = 2*3 + 1*1 + 0*1 = 7 value-seconds over a 5 s window
    assert g.time_integral() == pytest.approx(7.0)
    assert g.time_average() == pytest.approx(7.0 / 5.0)
    assert (g.min_value, g.max_value) == (0, 2)


def test_gauge_inc_dec(eng):
    g = Registry(eng).gauge("pool")
    g.inc(4)
    g.dec(1)
    assert g.value == 3


# --- histograms ---------------------------------------------------------------


def test_histogram_observe_math(eng):
    h = Registry(eng).histogram("wait", bounds=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 3.0, 3.0):
        h.observe(v)
    assert h.count == 4
    assert h.total_weight == 4
    assert h.mean() == pytest.approx((0.5 + 1.5 + 3.0 + 3.0) / 4)
    assert (h.min_value, h.max_value) == (0.5, 3.0)
    snap = h.snapshot()
    weights = {b["le"]: b["weight"] for b in snap["buckets"]}
    assert weights == {1.0: 1.0, 2.0: 1.0, 4.0: 2.0}


def test_histogram_update_weights_by_hold_time(eng):
    """update() tracks a level; each level is weighted by how long it
    was held on the virtual clock (queue depth semantics)."""
    h = Registry(eng).histogram("depth", bounds=(0, 1, 2, 4))
    h.update(0)       # depth 0 from t=0
    advance(eng, 1.0)
    h.update(2)       # depth 2 from t=1
    advance(eng, 3.0)
    h.update(0)       # depth 0 from t=4
    advance(eng, 1.0)
    h.flush()
    # weights: level 0 held 1 s, level 2 held 3 s, level 0 held 1 s
    assert h.total_weight == pytest.approx(5.0)
    assert h.mean() == pytest.approx((0 * 2 + 2 * 3) / 5.0)


def test_histogram_quantile(eng):
    h = Registry(eng).histogram("wait", bounds=(1.0, 2.0, 4.0))
    for v in (0.5, 0.5, 0.5, 3.0):
        h.observe(v)
    assert h.quantile(0.5) == 1.0   # upper bound of the median's bucket
    assert h.quantile(1.0) == 4.0   # upper bound of the last hit bucket
    with pytest.raises(SimulationError):
        h.quantile(1.5)


def test_histogram_rejects_unsorted_bounds_and_negative_weight(eng):
    reg = Registry(eng)
    with pytest.raises(SimulationError):
        reg.histogram("bad", bounds=(2.0, 1.0))
    h = reg.histogram("wait")
    with pytest.raises(SimulationError):
        h.observe(1.0, weight=-1.0)


# --- registry -----------------------------------------------------------------


def test_registry_caches_by_name_and_labels(eng):
    reg = Registry(eng)
    assert reg.counter("x", a=1) is reg.counter("x", a=1)
    assert reg.counter("x", a=1) is not reg.counter("x", a=2)
    assert len(reg) == 2


def test_registry_label_values_compare_as_strings(eng):
    """Lookups stringify label values, so get(priority=10) finds an
    instrument created with priority="10" and vice versa."""
    reg = Registry(eng)
    c = reg.counter("dma", priority=10)
    assert reg.get("dma", priority="10") is c


def test_registry_rejects_kind_mismatch(eng):
    reg = Registry(eng)
    reg.counter("x")
    with pytest.raises(SimulationError):
        reg.gauge("x")


def test_registry_find_by_prefix(eng):
    reg = Registry(eng)
    reg.counter("resource/a/grant")
    reg.counter("resource/b/grant")
    reg.counter("dma/a/bytes")
    assert len(reg.find("resource/")) == 2


# --- facade / disabled mode ---------------------------------------------------


def test_disabled_facade_returns_null_objects(eng):
    assert not obs.enabled()
    assert obs.counter("x") is NULL_INSTRUMENT
    assert obs.gauge("x") is NULL_INSTRUMENT
    assert obs.histogram("x") is NULL_INSTRUMENT
    assert obs.record("x", 0.0) is None
    # Null instruments absorb every instrument method silently.
    obs.counter("x").inc(5)
    obs.gauge("x").set(1)
    obs.histogram("x").observe(2.0)
    with obs.span("x") as sp:
        sp.attrs["k"] = "v"


def test_installed_facade_routes_to_observer(eng):
    with obs.observed(eng) as observer:
        obs.counter("hits").inc()
        obs.gauge("level").set(3)
        assert observer.metrics.get("hits").value == 1
        assert observer.metrics.get("level").value == 3
    assert not obs.enabled()


def test_observed_restores_previous_observer(eng):
    outer = obs.install(eng)
    with obs.observed(Engine()) as inner:
        assert obs.active() is inner
    assert obs.active() is outer
    obs.uninstall()
