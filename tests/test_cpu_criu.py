"""Unit tests for the CRIU-equivalent CPU checkpoint/restore engine."""

import pytest

from repro.cpu.criu import CriuEngine
from repro.cpu.memory import PAGE_DATA_SIZE
from repro.cpu.process import HostProcess
from repro.errors import CheckpointError
from repro.sim import Engine
from repro.storage.image import CheckpointImage
from repro.storage.media import DramMedia


def page_bytes(fill):
    return bytes([fill % 256] * PAGE_DATA_SIZE)


@pytest.fixture
def eng():
    return Engine()


@pytest.fixture
def medium(eng):
    return DramMedia(eng)


def make_process(n_pages=16):
    proc = HostProcess(n_pages=n_pages, name="app")
    for i in range(n_pages):
        proc.memory.write(i, page_bytes(i + 1))
    proc.registers["pc"] = 42
    proc.open_connection("10.0.0.2:443")
    return proc


def test_cow_dump_captures_start_state(eng, medium):
    """A write racing the dump must not leak into the image."""
    proc = make_process()
    criu = CriuEngine(eng)
    image = CheckpointImage(name="ckpt")

    def dump(eng):
        result = yield from criu.dump_cow(proc, image, medium)
        return result

    def racer(eng):
        yield eng.timeout(1e-9)  # while the dump is in flight
        proc.memory.write(0, page_bytes(200))
        proc.memory.write(15, page_bytes(201))

    d = eng.spawn(dump(eng))
    eng.spawn(racer(eng))
    eng.run()
    # Image reflects pre-write content for every page.
    for i in range(16):
        assert image.cpu_pages[i] == page_bytes(i + 1)
    # Process itself kept the new writes.
    assert proc.memory.read(0) == page_bytes(200)
    assert d.result.cow_faults == 2
    assert d.result.pages_copied == 16


def test_cow_dump_without_race_has_no_faults(eng, medium):
    proc = make_process()
    criu = CriuEngine(eng)
    image = CheckpointImage()

    def dump(eng):
        return (yield from criu.dump_cow(proc, image, medium))

    d = eng.spawn(dump(eng))
    eng.run()
    assert d.result.cow_faults == 0
    assert len(image.cpu_pages) == 16


def test_cow_dump_unprotects_all_pages_after(eng, medium):
    proc = make_process()
    criu = CriuEngine(eng)

    def dump(eng):
        yield from criu.dump_cow(proc, CheckpointImage(), medium)

    eng.run_process(dump(eng))
    assert not any(p.write_protected for p in proc.memory)
    proc.memory.write(3, page_bytes(99))  # must not fault


def test_dump_captures_control_state_and_kernel_objects(eng, medium):
    proc = make_process()
    criu = CriuEngine(eng)
    image = CheckpointImage()

    def dump(eng):
        yield from criu.dump_cow(proc, image, medium)

    eng.run_process(dump(eng))
    assert image.cpu_control["pc"] == 42
    assert image.kernel_objects[0].kind == "tcp-connection"


def test_tracked_dump_reports_dirty_pages(eng, medium):
    proc = make_process()
    criu = CriuEngine(eng)
    image = CheckpointImage()

    def dump(eng):
        return (yield from criu.dump_tracked(proc, image, medium))

    def racer(eng):
        yield eng.timeout(1e-9)
        proc.memory.write(2, page_bytes(100))

    d = eng.spawn(dump(eng))
    eng.spawn(racer(eng))
    eng.run()
    assert d.result.dirty_after_copy == [2]


def test_recopy_dirty_overwrites_image(eng, medium):
    proc = make_process()
    criu = CriuEngine(eng)
    image = CheckpointImage()

    def flow(eng):
        yield from criu.dump_tracked(proc, image, medium)
        proc.memory.write(2, page_bytes(100))
        dirty = proc.memory.dirty_pages()
        yield from criu.recopy_dirty(proc, image, medium, dirty)

    eng.run_process(flow(eng))
    assert image.cpu_pages[2] == page_bytes(100)


def test_restore_full_roundtrip(eng, medium):
    proc = make_process()
    criu = CriuEngine(eng)
    image = CheckpointImage()

    def flow(eng):
        yield from criu.dump_cow(proc, image, medium)
        image.finalize(eng.now)
        fresh = HostProcess(n_pages=16, name="restored")
        yield from criu.restore(image, fresh, medium)
        return fresh

    fresh = eng.run_process(flow(eng))
    assert fresh.memory.snapshot_all() == proc.memory.snapshot_all()
    assert fresh.registers["pc"] == 42
    assert fresh.kernel_objects[0].description == "10.0.0.2:443"


def test_restore_requires_finalized_image(eng, medium):
    criu = CriuEngine(eng)
    image = CheckpointImage()

    def flow(eng):
        yield from criu.restore(image, HostProcess(4), medium)

    with pytest.raises(CheckpointError, match="finalized"):
        eng.run_process(flow(eng))


def test_restore_takes_time_proportional_to_pages():
    def timed_restore(n_pages):
        local_eng = Engine()
        local_medium = DramMedia(local_eng)
        local_criu = CriuEngine(local_eng)
        proc = HostProcess(n_pages)
        image = CheckpointImage()

        def flow(e):
            yield from local_criu.dump_cow(proc, image, local_medium)
            image.finalize(e.now)
            t0 = e.now
            yield from local_criu.restore(image, HostProcess(n_pages), local_medium)
            return e.now - t0

        return local_eng.run_process(flow(local_eng))

    small = timed_restore(1024)
    large = timed_restore(4096)
    assert large == pytest.approx(4 * small, rel=0.01)


def test_lazy_restore_serves_faults_and_completes(eng, medium):
    proc = make_process()
    criu = CriuEngine(eng)
    image = CheckpointImage()

    def flow(eng):
        yield from criu.dump_cow(proc, image, medium)
        image.finalize(eng.now)
        fresh = HostProcess(n_pages=16, name="restored")
        gen = criu.restore(image, fresh, medium, on_demand=True)
        session = yield from _drain(gen, eng)
        # Touch a page immediately: must fault-load with correct bytes.
        assert fresh.memory.read(7) == page_bytes(8)
        assert session.faults >= 1
        assert session.take_stall_charge() > 0
        assert session.take_stall_charge() == 0  # drained
        yield session.done
        assert fresh.memory.snapshot_all() == proc.memory.snapshot_all()

    eng.run_process(flow(eng))


def _drain(gen, eng):
    """Run a generator that may yield events and return its value."""
    result = yield from gen
    return result
