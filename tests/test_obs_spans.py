"""Unit tests for virtual-clock span tracing."""

import pytest

from repro import obs
from repro.errors import SimulationError
from repro.obs.spans import SpanTracer
from repro.sim import Engine


@pytest.fixture
def eng():
    return Engine()


@pytest.fixture(autouse=True)
def _no_observer_leak():
    yield
    obs.uninstall()


def advance(eng, dt):
    def proc(eng):
        yield eng.timeout(dt)

    eng.run_process(proc(eng))


def test_spans_nest_and_time_on_virtual_clock(eng):
    tracer = SpanTracer(eng)
    with tracer.span("checkpoint"):
        advance(eng, 1.0)
        with tracer.span("quiesce"):
            advance(eng, 2.0)
        with tracer.span("copy", gpu=0):
            advance(eng, 3.0)
    (root,) = tracer.roots
    assert root.name == "checkpoint" and root.duration == pytest.approx(6.0)
    assert [c.name for c in root.children] == ["quiesce", "copy"]
    assert root.children[0].duration == pytest.approx(2.0)
    assert root.children[1].path() == "checkpoint/copy"
    assert root.children[1].attrs == {"gpu": 0}


def test_span_nesting_is_per_process(eng):
    """Spans opened by concurrently-running processes must not adopt
    each other as parents — each process has its own stack."""
    observer = obs.install(eng)

    def checkpointer(eng):
        with obs.span("checkpoint"):
            yield eng.timeout(4.0)

    def app(eng):
        yield eng.timeout(1.0)  # starts while "checkpoint" is open
        with obs.span("app-step"):
            yield eng.timeout(1.0)

    eng.spawn(checkpointer(eng))
    eng.spawn(app(eng))
    eng.run()
    roots = {n.name for n in observer.spans.roots}
    # app-step is a root of its own process, not a child of checkpoint.
    assert roots == {"checkpoint", "app-step"}
    (ckpt,) = [n for n in observer.spans.roots if n.name == "checkpoint"]
    assert ckpt.children == []


def test_record_adds_retroactive_span(eng):
    tracer = SpanTracer(eng)
    advance(eng, 5.0)
    node = tracer.record("stall", start=2.0, gpu=1)
    assert node.end == 5.0 and node.duration == pytest.approx(3.0)
    node2 = tracer.record("stall", start=1.0, end=1.5)
    assert node2.duration == pytest.approx(0.5)
    with pytest.raises(SimulationError):
        tracer.record("backwards", start=9.0, end=8.0)


def test_record_nests_under_open_span(eng):
    tracer = SpanTracer(eng)
    with tracer.span("copy"):
        advance(eng, 2.0)
        tracer.record("drain", start=1.0)
    (root,) = tracer.roots
    assert [c.path() for c in root.children] == ["copy/drain"]


def test_double_close_raises(eng):
    tracer = SpanTracer(eng)
    node = tracer.begin("x")
    tracer.end(node)
    with pytest.raises(SimulationError):
        tracer.end(node)


def test_duration_of_open_span_raises(eng):
    tracer = SpanTracer(eng)
    node = tracer.begin("x")
    with pytest.raises(SimulationError):
        _ = node.duration


def test_phase_totals_and_find(eng):
    tracer = SpanTracer(eng)
    for _ in range(2):
        with tracer.span("copy"):
            advance(eng, 1.5)
    with tracer.span("quiesce"):
        advance(eng, 1.0)
    totals = tracer.phase_totals()
    assert totals["copy"] == (2, pytest.approx(3.0))
    assert totals["quiesce"] == (1, pytest.approx(1.0))
    assert tracer.total("copy") == pytest.approx(3.0)
    assert len(tracer.find("copy")) == 2


def test_to_dict_round_trip(eng):
    tracer = SpanTracer(eng)
    with tracer.span("outer", image="img"):
        advance(eng, 1.0)
        with tracer.span("inner"):
            advance(eng, 1.0)
    (d,) = tracer.to_dicts()
    assert d["name"] == "outer" and d["attrs"] == {"image": "img"}
    assert d["duration"] == pytest.approx(2.0)
    assert d["children"][0]["name"] == "inner"


def test_null_span_is_reusable_and_silent(eng):
    assert not obs.enabled()
    first = obs.span("a", k=1)
    with first as sp:
        sp.attrs["extra"] = True
    # Attrs written inside the block do not leak into the next use.
    with obs.span("b") as sp2:
        assert sp2.attrs == {}
