"""Integration tests: the soft recopy checkpoint protocol.

§4.3's claim, tested literally: the recopy image must equal the live
process state at t2 — the moment the final recopy completes, while the
process is quiesced.
"""

from repro.api.runtime import GpuProcess
from repro.cluster import Machine
from repro.core.daemon import Phos
from repro.core.protocols.recopy import checkpoint_recopy
from repro.core.quiesce import resume
from repro.gpu.context import GpuContext
from repro.gpu.cost_model import KernelCost
from repro.gpu.program import build_global_writer
from repro.sim import Engine
from repro.units import MIB

from tests.toyapp import ToyApp, image_gpu_state, snapshot_process


def make_world(buf_size=256 * MIB, kernel_flops=1e9):
    eng = Engine()
    machine = Machine(eng, n_gpus=1)
    phos = Phos(eng, machine, use_context_pool=False)
    process = GpuProcess(eng, machine, name="app", gpu_indices=[0], cpu_pages=8)
    process.runtime.adopt_context(0, GpuContext(gpu_index=0))
    phos.attach(process)
    app = ToyApp(process, buf_size=buf_size, kernel_flops=kernel_flops)
    return eng, machine, phos, process, app


def run_recopy(eng, phos, process, app, warm_iters=2, post_iters=10,
               extra=None, **kwargs):
    """Recopy while the app runs; capture live state at t2 (kept stopped)."""
    result = {}

    def driver(eng):
        yield from app.setup()
        yield from app.run(warm_iters)
        frontend = phos.frontend_of(process)
        handle = eng.spawn(checkpoint_recopy(
            eng, frontend, phos.medium, phos.criu,
            keep_stopped=True, tracer=phos.tracer, **kwargs,
        ))
        runner = eng.spawn(app.run(post_iters, start=warm_iters))
        if extra is not None:
            eng.spawn(extra(eng))
        image, session = yield handle
        # t2: the process is quiesced; this is the stop-world-at-t2 state.
        result["gpu"], result["cpu"] = snapshot_process(process)
        resume([process])
        yield runner
        return image, session

    image, session = eng.run_process(driver(eng))
    eng.run()
    return result["gpu"], result["cpu"], image, session


def test_recopy_image_equals_t2_state():
    eng, machine, phos, process, app = make_world()
    t2_gpu, t2_cpu, image, session = run_recopy(eng, phos, process, app)
    assert image.finalized
    got = image_gpu_state(image)
    assert set(got) == set(t2_gpu)
    for key in t2_gpu:
        assert got[key] == t2_gpu[key], f"buffer at {key} diverged from t2"
    for idx, data in enumerate(t2_cpu):
        assert image.cpu_pages[idx] == data


def test_recopy_marks_dirty_buffers():
    eng, machine, phos, process, app = make_world()
    _, _, image, session = run_recopy(eng, phos, process, app)
    assert session.stats.dirty_marks > 0
    assert session.stats.bytes_recopied > 0


def test_recopy_never_stalls_the_app():
    eng, machine, phos, process, app = make_world()
    _, _, image, session = run_recopy(eng, phos, process, app)
    assert session.stats.cow_stall_time == 0.0
    assert session.stats.cow_shadow_copies == 0


def test_recopy_recopied_less_than_total():
    """The whole point: the final (stopped) pass only moves the delta."""
    eng, machine, phos, process, app = make_world()
    _, _, image, session = run_recopy(eng, phos, process, app)
    assert 0 < session.stats.bytes_recopied < session.stats.bytes_copied


def test_recopy_handles_mis_speculation_via_dirty_set():
    """A hidden global-pointer write is caught by the validator and simply
    added to the dirty set — the image still matches t2 (§4.3)."""
    eng, machine, phos, process, app = make_world()
    state = {}

    def extra(eng):
        # Launch the sneaky kernel mid-checkpoint.
        yield eng.timeout(1e-3)
        hidden = app.bufs["out"]
        sneaky = build_global_writer("sneaky", "hidden_out", hidden.addr)
        yield from process.runtime.launch_kernel(
            0, sneaky, [app.bufs["input"].addr, 8], 8,
            cost=KernelCost(flops=1e9), sync=True,
        )
        state["launched"] = True

    t2_gpu, _, image, session = run_recopy(
        eng, phos, process, app, extra=extra
    )
    assert state.get("launched")
    got = image_gpu_state(image)
    for key in t2_gpu:
        assert got[key] == t2_gpu[key]


def test_recopy_drops_buffers_freed_during_window():
    eng, machine, phos, process, app = make_world(buf_size=64 * MIB)
    state = {}

    def driver(eng):
        yield from app.setup()
        yield from app.run(1)
        doomed = app.bufs.pop("out")
        state["addr"] = doomed.addr
        frontend = phos.frontend_of(process)
        handle = eng.spawn(checkpoint_recopy(
            eng, frontend, phos.medium, phos.criu, keep_stopped=True,
        ))
        yield from process.runtime.free(0, doomed)
        image, session = yield handle
        resume([process])
        return image, session

    image, session = eng.run_process(driver(eng))
    eng.run()
    addrs = {r.addr for r in image.gpu_buffers[0].values()}
    assert state["addr"] not in addrs  # freed buffers don't exist at t2


def test_coordinated_checkpoint_reduces_recopy_volume():
    """Fig. 17's ablation: CPU-first ordering shrinks the dirty set."""

    def volume(coordinated):
        eng, machine, phos, process, app = make_world(
            buf_size=256 * MIB, kernel_flops=1e9
        )
        # Give the process a large CPU side so CPU copy time matters.
        process.host.memory.__init__(2048)
        _, _, image, session = run_recopy(
            eng, phos, process, app, post_iters=30, coordinated=coordinated
        )
        return session.stats.bytes_recopied

    assert volume(True) <= volume(False)
