"""Unit tests for reports and Chrome-trace export."""

import json

import pytest

from repro.api.runtime import GpuProcess
from repro.cluster import Machine
from repro.core.daemon import Phos
from repro.core.report import checkpoint_report, restore_report
from repro.gpu.context import GpuContext
from repro.sim import Tracer

from tests.toyapp import ToyApp


@pytest.fixture
def world(eng):
    machine = Machine(eng, n_gpus=1)
    phos = Phos(eng, machine, use_context_pool=False)
    process = GpuProcess(eng, machine, name="app", gpu_indices=[0], cpu_pages=4)
    process.runtime.adopt_context(0, GpuContext(gpu_index=0))
    phos.attach(process)
    return machine, phos, process


def run_checkpoint(eng, phos, process, mode="cow"):
    app = ToyApp(process)

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        image, session = yield phos.checkpoint(process, mode=mode)
        return image, session

    image, session = eng.run_process(driver(eng))
    eng.run()
    return image, session


def test_checkpoint_report_renders_core_facts(eng, world):
    machine, phos, process = world
    image, session = run_checkpoint(eng, phos, process)
    text = checkpoint_report(image, session, phos.tracer)
    assert image.name in text
    assert "GPU state" in text and "buffers" in text
    assert "protocol           : cow" in text
    assert "CoW shadows" in text
    assert "phase breakdown" in text
    assert "quiesce" in text


def test_recopy_report_includes_recopied_bytes(eng, world):
    machine, phos, process = world
    image, session = run_checkpoint(eng, phos, process, mode="recopy")
    session.stats.bytes_recopied = 12345678  # exercise the branch
    session.stats.dirty_marks = 3
    text = checkpoint_report(image, session)
    assert "bytes recopied" in text
    assert "dirty marks" in text


def test_report_shows_abort(eng, world):
    machine, phos, process = world
    image, session = run_checkpoint(eng, phos, process)
    session.aborted = True
    session.abort_reason = "test-abort"
    assert "ABORTED: test-abort" in checkpoint_report(image, session)


def test_restore_report(eng, world):
    machine, phos, process = world
    image, _ = run_checkpoint(eng, phos, process)
    machine2 = Machine(eng, name="m2", n_gpus=1)
    phos2 = Phos(eng, machine2, use_context_pool=False)

    def driver(eng):
        result = yield from phos2.restore(image, gpu_indices=[0],
                                          machine=machine2)
        yield result[2].done
        return result[2]

    session = eng.run_process(driver(eng))
    eng.run()
    text = restore_report(session, resume_time=0.01, total_time=0.5)
    assert "runnable" in text
    assert "on-demand fetches" in text
    assert "rollback" not in text


def test_chrome_trace_export(eng):
    tracer = Tracer(eng)

    def proc(eng):
        span = tracer.begin("copy", gpu=3)
        yield eng.timeout(2.0)
        tracer.end(span)
        tracer.mark("done", reason="test")

    eng.run_process(proc(eng))
    events = tracer.to_chrome_trace()
    assert len(events) == 2
    json.dumps(events)  # serializable
    complete = next(e for e in events if e["ph"] == "X")
    assert complete["name"] == "copy"
    assert complete["dur"] == pytest.approx(2e6)
    assert complete["tid"] == 3
    instant = next(e for e in events if e["ph"] == "i")
    assert instant["args"]["reason"] == "test"
    # Sorted by timestamp.
    assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)


def test_chrome_trace_skips_open_spans(eng):
    tracer = Tracer(eng)
    tracer.begin("never-closed")
    assert tracer.to_chrome_trace() == []
