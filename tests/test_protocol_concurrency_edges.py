"""Concurrency edge cases: collectives and multi-stream races under CoW."""

from repro.api.nccl import NcclCommunicator, nccl_allreduce, nccl_broadcast
from repro.api.runtime import GpuProcess
from repro.cluster import Machine
from repro.core.daemon import Phos
from repro.core.quiesce import quiesce
from repro.gpu.context import GpuContext
from repro.gpu.cost_model import KernelCost
from repro.gpu.program import build_fill, build_inplace_add
from repro.sim import Engine
from repro.units import MIB


def make_world(n_gpus=2):
    eng = Engine()
    machine = Machine(eng, n_gpus=n_gpus)
    phos = Phos(eng, machine, use_context_pool=False)
    process = GpuProcess(eng, machine, name="app",
                         gpu_indices=list(range(n_gpus)), cpu_pages=4)
    for i in range(n_gpus):
        process.runtime.adopt_context(i, GpuContext(gpu_index=i, nccl_scope=n_gpus))
    phos.attach(process)
    return eng, machine, phos, process


def test_collective_during_cow_is_isolated():
    """An all-reduce writing recv buffers mid-checkpoint must not leak
    post-t1 content into the image (type-2 calls are guarded too)."""
    eng, machine, phos, process = make_world()
    rt = process.runtime
    comm = NcclCommunicator(eng, [0, 1])

    def driver(eng):
        b0 = yield from rt.malloc(0, 128 * MIB, tag="g0")
        b1 = yield from rt.malloc(1, 128 * MIB, tag="g1")
        yield from rt.memcpy_h2d(0, b0, payload=10, sync=True)
        yield from rt.memcpy_h2d(1, b1, payload=32, sync=True)
        yield from quiesce(eng, [process])
        expected0, expected1 = b0.snapshot(), b1.snapshot()
        handle = phos.checkpoint(process, mode="cow")
        # All-reduce mutates both recv buffers while the copy runs.
        yield from nccl_allreduce(rt, comm, {0: b0, 1: b1}, sync=True)
        image, session = yield handle
        return image, session, b0, b1, expected0, expected1

    image, session, b0, b1, exp0, exp1 = eng.run_process(driver(eng))
    eng.run()
    assert not session.aborted
    assert image.gpu_buffers[0][b0.id].data == exp0
    assert image.gpu_buffers[1][b1.id].data == exp1
    # And the live buffers really did get the reduced value.
    assert b0.load_word(b0.addr) == 42


def test_broadcast_during_cow_preserves_t1():
    eng, machine, phos, process = make_world()
    rt = process.runtime
    comm = NcclCommunicator(eng, [0, 1])

    def driver(eng):
        b0 = yield from rt.malloc(0, 128 * MIB, tag="g0")
        b1 = yield from rt.malloc(1, 128 * MIB, tag="g1")
        yield from rt.memcpy_h2d(0, b0, payload=7, sync=True)
        yield from quiesce(eng, [process])
        expected1 = b1.snapshot()  # still zeros at t1
        handle = phos.checkpoint(process, mode="cow")
        yield from nccl_broadcast(rt, comm, 0, {0: b0, 1: b1}, sync=True)
        image, session = yield handle
        return image, session, b1, expected1

    image, session, b1, exp1 = eng.run_process(driver(eng))
    eng.run()
    assert not session.aborted
    assert image.gpu_buffers[1][b1.id].data == exp1
    assert b1.load_word(b1.addr) == 7  # broadcast really landed


def test_two_streams_racing_on_one_buffer_under_cow():
    """Kernels on different streams writing the same uncheckpointed
    buffer: the first guard shadows, the second waits for the shadow."""
    eng, machine, phos, process = make_world(n_gpus=1)
    rt = process.runtime

    def driver(eng):
        # pad is allocated (and therefore copied) first; the kernels hit
        # `victim` while it is still NOT_STARTED.
        yield from rt.malloc(0, 512 * MIB, tag="pad")
        victim = yield from rt.malloc(0, 256 * MIB, tag="victim")
        yield from rt.memcpy_h2d(0, victim, payload=5, sync=True)
        yield from quiesce(eng, [process])
        expected = victim.snapshot()
        handle = phos.checkpoint(process, mode="cow", coordinated=False)
        s1 = process.default_stream(0)
        s2 = machine.gpu(0).create_stream("second")
        cost = KernelCost(flops=1e9)
        op1 = yield from rt.launch_kernel(
            0, build_fill(), [victim.addr, 4, 99], 4, cost=cost, stream=s1,
        )
        op2 = yield from rt.launch_kernel(
            0, build_inplace_add(), [victim.addr, 4], 4, cost=cost, stream=s2,
        )
        yield op1.done
        yield op2.done
        image, session = yield handle
        return image, session, victim, expected

    image, session, victim, expected = eng.run_process(driver(eng))
    eng.run()
    assert not session.aborted
    assert session.stats.cow_shadow_copies == 1  # only one shadow made
    assert image.gpu_buffers[0][victim.id].data == expected
    # Both kernels executed on the live buffer (fill then +1, in some
    # serialized order across streams).
    assert victim.load_word(victim.addr) in (100, 99)


def test_checkpoint_with_second_stream_in_flight():
    """Quiesce drains *all* streams on the device, not just the default."""
    eng, machine, phos, process = make_world(n_gpus=1)
    rt = process.runtime

    def driver(eng):
        buf = yield from rt.malloc(0, 4096, tag="b")
        side = machine.gpu(0).create_stream("side")
        op = yield from rt.launch_kernel(
            0, build_fill(), [buf.addr, 4, 8], 4,
            cost=KernelCost(flops=5e13), stream=side,  # ~0.2 s kernel
        )
        image, session = yield phos.checkpoint(process, mode="cow")
        assert op.done.triggered  # quiesce waited for the side stream
        return image, buf

    image, buf = eng.run_process(driver(eng))
    eng.run()
    # The kernel ran before t1, so its effect IS in the image.
    assert image.gpu_buffers[0][buf.id].data[:8] == (8).to_bytes(8, "little")
