"""ImageCatalog lifecycle regressions and collision-safe image ids.

Regression tests for the PR-6 bugfix satellites: the catalog used to
accept ``commit()`` of a never-staged image, ``stage()`` of a revoked
image, and a silent double-``stage()`` overwrite; image ids used to
come from a bare process-global counter that collides across
``repro.parallel`` pool workers.
"""

import os

import pytest

from repro.errors import CheckpointError
from repro.storage.image import CheckpointImage, ImageCatalog


def _image(name="img"):
    img = CheckpointImage(name=name)
    img.finalize(1.0)
    return img


def test_normal_two_phase_lifecycle():
    catalog = ImageCatalog()
    img = _image()
    catalog.stage(img)
    assert catalog.is_staged(img) and not catalog.is_committed(img)
    catalog.commit(img)
    assert catalog.is_committed(img) and not catalog.is_staged(img)
    assert img.committed


def test_commit_of_never_staged_image_rejected():
    catalog = ImageCatalog()
    img = _image()
    with pytest.raises(CheckpointError, match="never staged"):
        catalog.commit(img)
    assert not img.committed
    assert catalog.committed_images() == []


def test_commit_on_wrong_catalog_rejected():
    """Staging on one medium does not authorize publishing on another."""
    here, there = ImageCatalog(), ImageCatalog()
    img = _image()
    here.stage(img)
    with pytest.raises(CheckpointError, match="never staged"):
        there.commit(img)
    here.commit(img)  # the right catalog still works


def test_stage_of_revoked_image_rejected():
    catalog = ImageCatalog()
    img = _image()
    img.revoke("test: torn")
    with pytest.raises(CheckpointError, match="cannot be staged"):
        catalog.stage(img)
    assert catalog.staged_images() == []


def test_double_stage_rejected():
    catalog = ImageCatalog()
    img = _image()
    catalog.stage(img)
    with pytest.raises(CheckpointError, match="already staged"):
        catalog.stage(img)
    # The first staging is still intact and committable.
    assert catalog.is_staged(img)
    catalog.commit(img)


def test_stage_of_committed_image_rejected():
    catalog = ImageCatalog()
    img = _image()
    catalog.stage(img)
    catalog.commit(img)
    with pytest.raises(CheckpointError, match="already committed"):
        catalog.stage(img)


def test_discard_stays_idempotent():
    catalog = ImageCatalog()
    img = _image()
    catalog.stage(img)
    catalog.discard(img, "test")
    catalog.discard(img, "test again")  # second discard is a no-op
    assert img.revoked
    assert catalog.staged_images() == []


def test_image_ids_are_pid_qualified_and_unique():
    a, b = CheckpointImage(), CheckpointImage()
    assert a.id != b.id
    prefix = f"{os.getpid():x}."
    assert a.id.startswith(prefix) and b.id.startswith(prefix)
