"""Unit tests for on-disk image serialization."""

import pytest

from repro.errors import CheckpointError
from repro.storage.image import CheckpointImage
from repro.storage.serial import FORMAT_VERSION, load_image, save_image

from tests.toyapp import ToyApp, image_gpu_state


@pytest.fixture
def image(eng, process):
    """A real checkpoint image from a toy run."""
    from repro.core.daemon import Phos

    phos = Phos(eng, process.machine, use_context_pool=False)
    phos.attach(process)
    app = ToyApp(process)

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        img, session = yield phos.checkpoint(process, mode="cow")
        assert not session.aborted
        return img

    img = eng.run_process(driver(eng))
    eng.run()
    return img


def test_roundtrip_preserves_everything(image, tmp_path):
    path = tmp_path / "ckpt.phos"
    size = save_image(image, path)
    assert size == path.stat().st_size
    loaded = load_image(path)
    assert loaded.finalized
    assert loaded.name == image.name
    assert loaded.checkpoint_time == image.checkpoint_time
    assert loaded.cpu_page_size == image.cpu_page_size
    assert loaded.cpu_control == image.cpu_control
    assert loaded.cpu_pages == image.cpu_pages
    assert image_gpu_state(loaded) == image_gpu_state(image)
    assert loaded.gpu_modules == image.gpu_modules
    assert loaded.context_meta == image.context_meta
    # Buffer metadata survives (tags drive workload rebinding).
    for gpu, records in image.gpu_buffers.items():
        for buf_id, rec in records.items():
            got = loaded.gpu_buffers[gpu][buf_id]
            assert (got.addr, got.size, got.tag) == (rec.addr, rec.size, rec.tag)


def test_restore_from_loaded_image(image, tmp_path, eng):
    """A loaded image is restorable exactly like the in-memory one."""
    from repro.cluster import Machine
    from repro.core.daemon import Phos

    path = tmp_path / "ckpt.phos"
    save_image(image, path)
    loaded = load_image(path)
    machine2 = Machine(eng, name="m2", n_gpus=1)
    phos2 = Phos(eng, machine2, use_context_pool=False)

    def driver(eng):
        result = yield from phos2.restore(
            loaded, gpu_indices=[0], machine=machine2, concurrent=True
        )
        process2, _, session = result
        yield session.done
        return process2

    process2 = eng.run_process(driver(eng))
    eng.run()
    by_addr = {b.addr: b.snapshot() for b in process2.runtime.allocations[0]}
    for rec in image.gpu_buffers[0].values():
        assert by_addr[rec.addr] == rec.data


def test_unfinalized_image_rejected(tmp_path):
    with pytest.raises(CheckpointError):
        save_image(CheckpointImage(), tmp_path / "x.phos")


def test_corruption_detected(image, tmp_path):
    path = tmp_path / "ckpt.phos"
    save_image(image, path)
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0xFF  # flip a bit in the middle
    path.write_bytes(bytes(raw))
    with pytest.raises(CheckpointError, match="CRC"):
        load_image(path)


def test_truncation_detected(image, tmp_path):
    path = tmp_path / "ckpt.phos"
    save_image(image, path)
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    with pytest.raises(CheckpointError):
        load_image(path)


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "junk.phos"
    import struct
    import zlib

    body = struct.pack("<8sII", b"NOTPHOS!", FORMAT_VERSION, 2) + b"{}"
    path.write_bytes(body + struct.pack("<I", zlib.crc32(body)))
    with pytest.raises(CheckpointError, match="magic"):
        load_image(path)


def test_future_version_rejected(tmp_path):
    path = tmp_path / "future.phos"
    import struct
    import zlib

    body = struct.pack("<8sII", b"PHOSIMG1", FORMAT_VERSION + 9, 2) + b"{}"
    path.write_bytes(body + struct.pack("<I", zlib.crc32(body)))
    with pytest.raises(CheckpointError, match="version"):
        load_image(path)


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.phos"
    path.write_bytes(b"")
    with pytest.raises(CheckpointError, match="too short"):
        load_image(path)
