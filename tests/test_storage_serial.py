"""Unit tests for on-disk image serialization."""

import json
import struct
import zlib
from pathlib import Path

import pytest

from repro.errors import CheckpointError, TornImageError
from repro.storage.image import CheckpointImage
from repro.storage.serial import FORMAT_VERSION, load_image, save_image

from tests.toyapp import ToyApp, image_gpu_state

GOLDENS = Path(__file__).parent / "goldens"

_HEADER_SIZE = 16  # magic(8) + version(4) + metadata length(4)


def rewrite_metadata(path, mutate):
    """Hand-corrupt an image's JSON index, keeping the CRC valid.

    This is what a *buggy writer* produces (as opposed to bit-rot,
    which the CRC catches): the container checks out, the metadata
    lies.  ``mutate`` edits the parsed metadata dict in place.
    """
    raw = path.read_bytes()
    body = raw[:-4]
    magic, version, meta_len = struct.unpack_from("<8sII", body)
    meta = json.loads(body[_HEADER_SIZE : _HEADER_SIZE + meta_len])
    mutate(meta)
    meta_bytes = json.dumps(meta, separators=(",", ":")).encode()
    new_body = (struct.pack("<8sII", magic, version, len(meta_bytes))
                + meta_bytes + body[_HEADER_SIZE + meta_len:])
    path.write_bytes(new_body + struct.pack("<I", zlib.crc32(new_body)))


@pytest.fixture
def image(eng, process):
    """A real checkpoint image from a toy run."""
    from repro.core.daemon import Phos

    phos = Phos(eng, process.machine, use_context_pool=False)
    phos.attach(process)
    app = ToyApp(process)

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        img, session = yield phos.checkpoint(process, mode="cow")
        assert not session.aborted
        return img

    img = eng.run_process(driver(eng))
    eng.run()
    return img


def test_roundtrip_preserves_everything(image, tmp_path):
    path = tmp_path / "ckpt.phos"
    size = save_image(image, path)
    assert size == path.stat().st_size
    loaded = load_image(path)
    assert loaded.finalized
    assert loaded.name == image.name
    assert loaded.checkpoint_time == image.checkpoint_time
    assert loaded.cpu_page_size == image.cpu_page_size
    assert loaded.cpu_control == image.cpu_control
    assert loaded.cpu_pages == image.cpu_pages
    assert image_gpu_state(loaded) == image_gpu_state(image)
    assert loaded.gpu_modules == image.gpu_modules
    assert loaded.context_meta == image.context_meta
    # Buffer metadata survives (tags drive workload rebinding).
    for gpu, records in image.gpu_buffers.items():
        for buf_id, rec in records.items():
            got = loaded.gpu_buffers[gpu][buf_id]
            assert (got.addr, got.size, got.tag) == (rec.addr, rec.size, rec.tag)


def test_restore_from_loaded_image(image, tmp_path, eng):
    """A loaded image is restorable exactly like the in-memory one."""
    from repro.cluster import Machine
    from repro.core.daemon import Phos

    path = tmp_path / "ckpt.phos"
    save_image(image, path)
    loaded = load_image(path)
    machine2 = Machine(eng, name="m2", n_gpus=1)
    phos2 = Phos(eng, machine2, use_context_pool=False)

    def driver(eng):
        result = yield from phos2.restore(
            loaded, gpu_indices=[0], machine=machine2, concurrent=True
        )
        process2, _, session = result
        yield session.done
        return process2

    process2 = eng.run_process(driver(eng))
    eng.run()
    by_addr = {b.addr: b.snapshot() for b in process2.runtime.allocations[0]}
    for rec in image.gpu_buffers[0].values():
        assert by_addr[rec.addr] == rec.data


def test_unfinalized_image_rejected(tmp_path):
    with pytest.raises(CheckpointError):
        save_image(CheckpointImage(), tmp_path / "x.phos")


def test_corruption_detected(image, tmp_path):
    path = tmp_path / "ckpt.phos"
    save_image(image, path)
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0xFF  # flip a bit in the middle
    path.write_bytes(bytes(raw))
    with pytest.raises(CheckpointError, match="CRC"):
        load_image(path)


def test_truncation_detected(image, tmp_path):
    path = tmp_path / "ckpt.phos"
    save_image(image, path)
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    with pytest.raises(CheckpointError):
        load_image(path)


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "junk.phos"
    import struct
    import zlib

    body = struct.pack("<8sII", b"NOTPHOS!", FORMAT_VERSION, 2) + b"{}"
    path.write_bytes(body + struct.pack("<I", zlib.crc32(body)))
    with pytest.raises(CheckpointError, match="magic"):
        load_image(path)


def test_future_version_rejected(tmp_path):
    path = tmp_path / "future.phos"
    import struct
    import zlib

    body = struct.pack("<8sII", b"PHOSIMG1", FORMAT_VERSION + 9, 2) + b"{}"
    path.write_bytes(body + struct.pack("<I", zlib.crc32(body)))
    with pytest.raises(CheckpointError, match="version"):
        load_image(path)


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.phos"
    path.write_bytes(b"")
    with pytest.raises(CheckpointError, match="too short"):
        load_image(path)


# -- buggy-writer metadata (PR-6 regression: valid CRC, lying index) ----------------

def _first_gpu_buffer(meta):
    gpu = sorted(meta["gpu_buffers"])[0]
    buf = sorted(meta["gpu_buffers"][gpu], key=int)[0]
    return meta["gpu_buffers"][gpu][buf]


def test_negative_blob_offset_rejected(image, tmp_path):
    path = tmp_path / "ckpt.phos"
    save_image(image, path)

    def mutate(meta):
        rec = _first_gpu_buffer(meta)
        rec["blob"][0] = -rec["blob"][0] - 1

    rewrite_metadata(path, mutate)
    with pytest.raises(TornImageError, match="negative blob reference"):
        load_image(path)


def test_negative_blob_length_rejected(image, tmp_path):
    path = tmp_path / "ckpt.phos"
    save_image(image, path)
    rewrite_metadata(path, lambda m: _first_gpu_buffer(m)["blob"]
                     .__setitem__(1, -8))
    with pytest.raises(TornImageError, match="negative blob reference"):
        load_image(path)


def test_blob_reference_past_end_rejected(image, tmp_path):
    path = tmp_path / "ckpt.phos"
    save_image(image, path)
    rewrite_metadata(path, lambda m: _first_gpu_buffer(m)["blob"]
                     .__setitem__(1, 1 << 30))
    with pytest.raises(TornImageError, match="out of range"):
        load_image(path)


def test_size_smaller_than_blob_rejected(image, tmp_path):
    """A buffer whose declared logical size is below its stored payload
    loads as wrong state (the cost model charges ``size``, restore
    writes ``data``) — it must be rejected, not restored."""
    path = tmp_path / "ckpt.phos"
    save_image(image, path)
    rewrite_metadata(path,
                     lambda m: _first_gpu_buffer(m).__setitem__("size", 8))
    with pytest.raises(TornImageError, match="declares size"):
        load_image(path)


def test_negative_size_rejected(image, tmp_path):
    path = tmp_path / "ckpt.phos"
    save_image(image, path)
    rewrite_metadata(path,
                     lambda m: _first_gpu_buffer(m).__setitem__("size", -1))
    with pytest.raises(TornImageError, match="declares size"):
        load_image(path)


# -- v1 golden fixture (backward compatibility) -------------------------------------

def make_golden_image():
    """The deterministic toy image pinned as ``goldens/image_v1.phos``.

    Regenerate the fixture with::

        PYTHONPATH=src python -c "from tests.test_storage_serial import \\
            write_golden; write_golden()"
    """
    from repro.api.runtime import GpuProcess
    from repro.cluster import Machine
    from repro.core.daemon import Phos
    from repro.gpu.context import GpuContext
    from repro.sim import Engine

    eng = Engine()
    machine = Machine(eng, name="node0", n_gpus=1)
    phos = Phos(eng, machine, use_context_pool=False)
    proc = GpuProcess(eng, machine, name="app", gpu_indices=[0], cpu_pages=8)
    proc.runtime.adopt_context(0, GpuContext(gpu_index=0))
    phos.attach(proc)
    app = ToyApp(proc)

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        img, _ = yield phos.checkpoint(proc, mode="stop-world",
                                       name="golden-v1")
        return img

    img = eng.run_process(driver(eng))
    eng.run()
    return img


def write_golden(path=GOLDENS / "image_v1.phos"):
    save_image(make_golden_image(), path)


def test_v1_golden_loads_and_writer_is_stable(tmp_path):
    """The committed v1 fixture keeps loading, and today's writer still
    produces byte-identical v1 output — old images never go stale."""
    golden = GOLDENS / "image_v1.phos"
    loaded = load_image(golden)
    assert loaded.finalized
    assert loaded.name == "golden-v1"
    assert type(loaded) is CheckpointImage  # v1 loads as a plain image
    fresh = make_golden_image()
    assert image_gpu_state(loaded) == image_gpu_state(fresh)
    assert loaded.cpu_pages == fresh.cpu_pages
    assert loaded.checkpoint_time == fresh.checkpoint_time
    # Writer stability: re-serializing the loaded image reproduces the
    # committed v1 bytes exactly (buffer ids live in the file, so this
    # is byte-deterministic whatever ran before this test).
    out = tmp_path / "rewrite.phos"
    save_image(loaded, out)
    assert out.read_bytes() == golden.read_bytes()
