"""Differential property test: calendar queue vs. the legacy heap.

The calendar-queue scheduler (PR 7) claims *exact* order equivalence
with the historical single-heap scheduler: FIFO within a timestamp,
timestamps in order, callbacks deferred to the queue — so every golden
stays bit-identical.  This suite generates random event soups —
timeouts with heavy same-timestamp collisions, ``AnyOf``/``AllOf``
fan-ins, cross-process interrupts, process joins — executes each soup
once per scheduler, and asserts the *complete firing trace* (not just
the final state) is identical.

The soup is built as a seed-derived op list first and interpreted
against each engine second, so both runs execute byte-for-byte the
same program; the only variable is the queue implementation.
"""

from __future__ import annotations

import random

import pytest

from repro.sim import Engine
from repro.sim.engine import Interrupt

#: Deliberately few distinct delays: collisions (many records in one
#: timestamp bucket) are the interesting case for the calendar queue.
DELAYS = [0.0, 0.25, 0.5, 0.5, 1.0, 1.0, 2.0]

OP_KINDS = ["timeout", "timeout", "timeout", "anyof", "allof",
            "interrupt", "waitproc"]


def build_ops(seed: int, n_procs: int = 6, max_steps: int = 5) -> list:
    """A deterministic random program: one op list per process."""
    rng = random.Random(seed)
    ops = []
    for _ in range(n_procs):
        steps = []
        for _ in range(rng.randrange(1, max_steps + 1)):
            kind = rng.choice(OP_KINDS)
            if kind == "timeout":
                steps.append(("timeout", rng.choice(DELAYS)))
            elif kind in ("anyof", "allof"):
                steps.append((kind, [rng.choice(DELAYS)
                                     for _ in range(rng.randrange(1, 4))]))
            elif kind == "interrupt":
                steps.append(("interrupt", rng.randrange(n_procs),
                              rng.choice(DELAYS)))
            else:
                steps.append(("waitproc", rng.randrange(n_procs)))
        ops.append(steps)
    return ops


def run_soup(ops: list, legacy: bool) -> tuple:
    """Interpret the op list; return (trace, final clock, counters)."""
    eng = Engine(legacy_heap=legacy)
    trace: list = []
    procs: list = []

    def body(pid: int, steps: list):
        for i, step in enumerate(steps):
            try:
                if step[0] == "timeout":
                    val = yield eng.timeout(step[1], value=(pid, i))
                    trace.append(("t", pid, i, eng.now, val))
                elif step[0] == "anyof":
                    idx, _ = yield eng.any_of(
                        [eng.timeout(d) for d in step[1]])
                    trace.append(("any", pid, i, eng.now, idx))
                elif step[0] == "allof":
                    vals = yield eng.all_of(
                        [eng.timeout(d, value=j)
                         for j, d in enumerate(step[1])])
                    trace.append(("all", pid, i, eng.now, tuple(vals)))
                elif step[0] == "interrupt":
                    _, target, delay = step
                    yield eng.timeout(delay)
                    if target != pid and not procs[target].triggered:
                        procs[target].interrupt()
                    trace.append(("int", pid, i, eng.now, target))
                else:
                    _, target = step
                    if target == pid:
                        trace.append(("selfskip", pid, i, eng.now))
                        continue
                    got = yield procs[target]
                    trace.append(("join", pid, i, eng.now, got))
            except Interrupt:
                trace.append(("caught", pid, i, eng.now))
        return pid

    for pid, steps in enumerate(ops):
        procs.append(eng.spawn(body(pid, steps), name=f"p{pid}"))
    eng.run()
    finished = tuple(p.triggered for p in procs)
    return (trace, eng.now, eng.events_scheduled, eng.events_executed,
            finished)


@pytest.mark.parametrize("seed", range(20))
def test_calendar_queue_matches_legacy_heap(seed):
    ops = build_ops(seed)
    calendar = run_soup(ops, legacy=False)
    heap = run_soup(ops, legacy=True)
    assert calendar[0] == heap[0], "firing order diverged"
    assert calendar[1:] == heap[1:], "final clock or counters diverged"


@pytest.mark.parametrize("seed", [3, 11])
def test_soup_is_actually_colliding(seed):
    """Sanity: the generator produces the same-timestamp collisions the
    suite exists to cover (guards against a silently-weakened soup)."""
    trace, _, scheduled, executed, _ = run_soup(build_ops(seed),
                                                legacy=False)
    times = [entry[3] for entry in trace]
    assert len(times) != len(set(times)), "no same-timestamp collisions"
    assert executed == scheduled
