"""Integration tests: distributed jobs and consistent cross-machine C/R."""

import pytest

from repro.cluster import Cluster
from repro.errors import CheckpointError, InvalidValueError
from repro.sim import Engine
from repro.tasks.distributed import DistributedJob


def make_job(n_machines=2, spec="resnet152-train"):
    eng = Engine()
    cluster = Cluster.testbed(eng, n_machines=n_machines, n_gpus=1)
    job = DistributedJob(eng, cluster, spec)
    return eng, job


def test_rejects_inference_specs():
    eng = Engine()
    cluster = Cluster.testbed(eng, n_machines=2, n_gpus=1)
    with pytest.raises(InvalidValueError):
        DistributedJob(eng, cluster, "resnet152-infer")


def test_replicas_agree_after_allreduce():
    eng, job = make_job()

    def driver(eng):
        yield from job.setup()
        yield from job.run_steps(2)

    eng.run_process(driver(eng))
    eng.run()
    states = job.replica_states()
    # Gradient buffer 0 was averaged: identical across replicas.
    assert states[0]["g0:grads:0"] == states[1]["g0:grads:0"]


def test_consistent_checkpoint_cuts_at_the_same_instant():
    eng, job = make_job()

    def driver(eng):
        yield from job.setup()
        yield from job.run_steps(1)
        images = yield from job.checkpoint_all(name="cut")
        return images

    images = eng.run_process(driver(eng))
    eng.run()
    assert len(images) == 2
    t1s = [img.checkpoint_time for img in images]
    assert max(t1s) - min(t1s) < 0.05  # one global cut
    for img in images:
        assert img.finalized


def test_checkpoint_images_match_replica_states_at_cut():
    eng, job = make_job()

    def driver(eng):
        yield from job.setup()
        yield from job.run_steps(1)
        images = yield from job.checkpoint_all()
        # No execution after the cut: live state == image state.
        return images

    images = eng.run_process(driver(eng))
    eng.run()

    for image, state in zip(images, job.replica_states()):
        by_tag = {}
        for records in image.gpu_buffers.values():
            for rec in records.values():
                by_tag[rec.tag] = rec.data
        for tag, data in by_tag.items():
            assert state[tag] == data, tag


def test_recover_restores_all_replicas_and_training_continues():
    eng, job = make_job()

    def driver(eng):
        yield from job.setup()
        yield from job.run_steps(2)
        yield from job.checkpoint_all()
        yield from job.run_steps(1)  # progress lost to the failure
        # --- failure: recover from the consistent cut -------------------
        sessions = yield from job.recover()
        for s in sessions:
            yield s.done
        yield from job.run_steps(2)  # resumes and keeps training
        return sessions

    eng.run_process(driver(eng))
    eng.run()
    states = job.replica_states()
    # Replicas still agree after recovery + further training.
    assert states[0]["g0:grads:0"] == states[1]["g0:grads:0"]


def test_recover_without_checkpoint_rejected():
    eng, job = make_job()

    def driver(eng):
        yield from job.setup()
        yield from job.recover()

    with pytest.raises(CheckpointError, match="no consistent checkpoint"):
        eng.run_process(driver(eng))


def test_three_machine_job():
    eng, job = make_job(n_machines=3)

    def driver(eng):
        yield from job.setup()
        yield from job.run_steps(1)
        images = yield from job.checkpoint_all()
        return images

    images = eng.run_process(driver(eng))
    eng.run()
    assert len(images) == 3
    states = job.replica_states()
    assert states[0]["g0:grads:0"] == states[1]["g0:grads:0"]
    assert states[1]["g0:grads:0"] == states[2]["g0:grads:0"]
