"""Integration tests: the iterative pre-copy extension of soft recopy."""

from repro.api.runtime import GpuProcess
from repro.cluster import Machine
from repro.core.daemon import Phos
from repro.core.quiesce import resume
from repro.gpu.context import GpuContext
from repro.sim import Engine
from repro.units import MIB

from tests.toyapp import ToyApp, image_gpu_state, snapshot_process


def make_world():
    eng = Engine()
    machine = Machine(eng, n_gpus=1)
    phos = Phos(eng, machine, use_context_pool=False)
    process = GpuProcess(eng, machine, name="app", gpu_indices=[0], cpu_pages=8)
    process.runtime.adopt_context(0, GpuContext(gpu_index=0))
    phos.attach(process)
    app = ToyApp(process, buf_size=256 * MIB, kernel_flops=1e9)
    return eng, machine, phos, process, app


def run_recopy(precopy_rounds, post_iters=12):
    eng, machine, phos, process, app = make_world()
    state = {}

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        handle = phos.checkpoint(process, mode="recopy", keep_stopped=True,
                                 precopy_rounds=precopy_rounds)
        runner = eng.spawn(app.run(post_iters, start=2))
        image, session = yield handle
        # t2: quiesced — capture the reference state.
        state["gpu"], _ = snapshot_process(process)
        stall = eng.now - session.final_quiesce_start
        resume([process])
        yield runner
        return image, session, stall

    image, session, stall = eng.run_process(driver(eng))
    eng.run()
    return state["gpu"], image, session, stall


def test_precopy_image_still_equals_t2_state():
    """Correctness is invariant under pre-copy rounds."""
    t2_gpu, image, session, _ = run_recopy(precopy_rounds=3)
    got = image_gpu_state(image)
    assert set(got) == set(t2_gpu)
    for key in t2_gpu:
        assert got[key] == t2_gpu[key]


def test_precopy_moves_more_bytes_total():
    """Pre-copy rounds trade extra background copying ..."""
    _, _, plain, _ = run_recopy(precopy_rounds=0)
    _, _, iterative, _ = run_recopy(precopy_rounds=3)
    assert iterative.stats.bytes_recopied >= plain.stats.bytes_recopied


def test_precopy_converges_and_stops():
    """The round loop breaks once the delta stops shrinking; a huge
    round budget must not loop forever or change correctness."""
    t2_gpu, image, session, _ = run_recopy(precopy_rounds=50)
    got = image_gpu_state(image)
    for key in t2_gpu:
        assert got[key] == t2_gpu[key]


def test_precopy_zero_rounds_matches_base_protocol():
    t2_gpu, image, session, _ = run_recopy(precopy_rounds=0)
    got = image_gpu_state(image)
    for key in t2_gpu:
        assert got[key] == t2_gpu[key]
