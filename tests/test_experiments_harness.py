"""Unit tests for the experiment harness and fast experiment sanity."""

from repro.experiments.harness import (
    ExperimentResult,
    build_world,
    format_table,
    run_steps,
    setup_app,
)


def test_experiment_result_add_and_column():
    r = ExperimentResult(exp_id="x", title="t", columns=["a", "b"])
    r.add(a=1, b=2.0)
    r.add(a=3, b=None)
    assert r.column("a") == [1, 3]
    assert r.column("b") == [2.0, None]


def test_format_table_aligns_and_handles_nan():
    r = ExperimentResult(exp_id="x", title="Demo", columns=["name", "v"])
    r.add(name="long-name-here", v=0.1234)
    r.add(name="s", v=float("nan"))
    r.add(name="big", v=1234.5)
    text = format_table(r)
    lines = text.splitlines()
    assert lines[0] == "== x: Demo =="
    assert "0.1234" in text
    assert "n/a" in text
    assert "1234" in text  # wide values rendered without decimals
    # Aligned columns: header and rows share the separator width.
    assert len(lines[1]) == len(lines[2])


def test_format_table_includes_notes():
    r = ExperimentResult(exp_id="x", title="t", columns=["a"], notes="hello")
    r.add(a=1)
    assert "-- hello" in r.format()


def test_build_world_attaches_frontend():
    world = build_world("resnet152-infer")
    frontend = world.phos.frontend_of(world.process)
    assert frontend.process is world.process
    assert world.process.runtime.interceptor is frontend


def test_setup_and_run_steps_advance_clock():
    world = build_world("resnet152-infer")
    setup_app(world, warm=1)
    elapsed = run_steps(world, 2)
    assert elapsed > 0
    assert world.engine.now > 0


def test_build_world_always_instrument_flag():
    world = build_world("resnet152-infer", always_instrument=True)
    frontend = world.phos.frontend_of(world.process)
    assert frontend.always_instrument


def test_build_world_with_pool_boots_daemon():
    world = build_world("resnet152-infer", use_pool=True)
    assert world.phos.pool is not None
    assert world.phos.pool.prefilled
