"""Integration tests: concurrent on-demand restore (§6).

The correctness claim: an application restored concurrently and resumed
immediately computes exactly the same final state as one restored
stop-the-world — on-demand fetches and guard stalls must make partially
restored data invisible.
"""

import pytest

from repro.api.runtime import GpuProcess
from repro.cluster import Machine
from repro.core.daemon import Phos
from repro.core.quiesce import quiesce, resume
from repro.gpu.context import GpuContext
from repro.gpu.cost_model import KernelCost
from repro.gpu.program import build_global_reader
from repro.sim import Engine
from repro.units import MIB

from tests.toyapp import ToyApp


WARM_ITERS = 3
POST_ITERS = 5


def make_world(buf_size=256 * MIB, use_pool=False):
    eng = Engine()
    machine = Machine(eng, n_gpus=1)
    phos = Phos(eng, machine, use_context_pool=use_pool)
    process = GpuProcess(eng, machine, name="app", gpu_indices=[0], cpu_pages=8)
    process.runtime.adopt_context(0, GpuContext(gpu_index=0))
    phos.attach(process)
    app = ToyApp(process, buf_size=buf_size, kernel_flops=1e9)
    return eng, machine, phos, process, app


def checkpoint_image(eng, phos, process, app, warm_iters=WARM_ITERS):
    """Run warm iterations and take a clean (quiesced) checkpoint."""

    def driver(eng):
        yield from app.setup()
        yield from app.run(warm_iters)
        handle = phos.checkpoint(process, mode="cow")
        image, session = yield handle
        assert not session.aborted
        return image

    image = eng.run_process(driver(eng))
    eng.run()
    return image


def rebind_app(app_template, process):
    """A ToyApp continuing on a restored process (buffers found by tag)."""
    app = ToyApp(process, buf_size=app_template.buf_size,
                 kernel_flops=1e9)
    by_tag = {b.tag: b for b in process.runtime.allocations[0]}
    app.bufs = {name: by_tag[name] for name in
                ("input", "act", "weight", "grad", "idx", "out")}
    return app


def reference_final_state(buf_size=256 * MIB, total_iters=WARM_ITERS + POST_ITERS):
    """The no-checkpoint ground truth: run straight through."""
    eng, machine, phos, process, app = make_world(buf_size=buf_size)

    def driver(eng):
        yield from app.setup()
        yield from app.run(total_iters)

    eng.run_process(driver(eng))
    return {b.tag: b.snapshot() for b in process.runtime.allocations[0]}


def restored_final_state(concurrent, buf_size=256 * MIB, use_pool=False):
    eng, machine, phos, process, app = make_world(buf_size=buf_size,
                                                  use_pool=use_pool)
    if use_pool:
        eng.run_process(phos.boot())
    image = checkpoint_image(eng, phos, process, app)
    # Restore onto a fresh machine (as after a failure).
    machine2 = Machine(eng, name="node1", n_gpus=1)
    phos2 = Phos(eng, machine2, use_context_pool=use_pool)
    if use_pool:
        eng.run_process(phos2.boot())

    def driver(eng):
        result = yield from phos2.restore(
            image, gpu_indices=[0], concurrent=concurrent, machine=machine2
        )
        new_process, frontend, session = result
        new_app = rebind_app(app, new_process)
        t_resume = eng.now
        yield from new_app.run(POST_ITERS, start=WARM_ITERS)
        t_done = eng.now
        if session is not None:
            yield session.done
        return new_process, session, t_done - t_resume

    new_process, session, run_time = eng.run_process(driver(eng))
    eng.run()
    state = {b.tag: b.snapshot() for b in new_process.runtime.allocations[0]}
    return state, session, run_time


def test_stop_world_restore_reproduces_reference():
    ref = reference_final_state()
    got, session, _ = restored_final_state(concurrent=False)
    assert session is None
    assert got == ref


def test_concurrent_restore_reproduces_reference():
    ref = reference_final_state()
    got, session, _ = restored_final_state(concurrent=True)
    assert session is not None and not session.aborted
    assert got == ref


def test_concurrent_restore_uses_on_demand_fetches():
    _, session, _ = restored_final_state(concurrent=True)
    # The app touches buffers before the background loader reaches them.
    assert session.demand_fetches > 0
    assert session.stall_time > 0
    assert session.all_restored()


def test_concurrent_restore_overlaps_copy_with_execution():
    """The app's first iterations run while data is still streaming —
    it must not wait for the full image."""
    eng, machine, phos, process, app = make_world()

    def prepare(eng):
        yield from app.setup()
        # A cold region the iteration never touches (think: optimizer
        # state during inference) — it restores purely in background.
        cold = yield from process.runtime.malloc(0, 1024 * MIB, tag="cold")
        yield from process.runtime.memcpy_h2d(0, cold, payload=77, sync=True)
        yield from app.run(WARM_ITERS)
        image, session = yield phos.checkpoint(process, mode="cow")
        assert not session.aborted
        return image

    image = eng.run_process(prepare(eng))
    eng.run()
    machine2 = Machine(eng, name="node1", n_gpus=1)
    phos2 = Phos(eng, machine2, use_context_pool=False)

    def driver(eng):
        result = yield from phos2.restore(
            image, gpu_indices=[0], concurrent=True, machine=machine2
        )
        new_process, frontend, session = result
        resumed_at = eng.now
        assert not session.all_restored()  # resumed before data complete
        new_app = rebind_app(app, new_process)
        yield from new_app.one_iteration(WARM_ITERS)
        first_iter_at = eng.now
        yield session.done
        all_data_at = eng.now
        return resumed_at, first_iter_at, all_data_at

    resumed_at, first_iter_at, all_data_at = eng.run_process(driver(eng))
    eng.run()
    assert first_iter_at < all_data_at  # genuine overlap


def test_restore_mis_speculation_rolls_back_to_image():
    """A kernel reading via a module-global pointer defeats read
    speculation; the validator fires and PHOS rolls back to the image
    then finishes stop-the-world (§6)."""
    eng, machine, phos, process, app = make_world()
    image = checkpoint_image(eng, phos, process, app)
    machine2 = Machine(eng, name="node1", n_gpus=1)
    phos2 = Phos(eng, machine2, use_context_pool=False)

    def driver(eng):
        result = yield from phos2.restore(
            image, gpu_indices=[0], concurrent=True, machine=machine2
        )
        new_process, frontend, session = result
        by_tag = {b.tag: b for b in new_process.runtime.allocations[0]}
        # Read `out` (restored last) through a hidden global pointer.
        sneak = build_global_reader("sneak", "hidden_in", by_tag["out"].addr)
        yield from new_process.runtime.launch_kernel(
            0, sneak, [by_tag["act"].addr, 8], 8,
            cost=KernelCost(flops=1e9), sync=True,
        )
        yield session.done
        return new_process, session

    new_process, session = eng.run_process(driver(eng))
    eng.run()
    assert session.aborted and session.rolled_back
    # After rollback, every buffer matches the image exactly.
    by_tag = {b.tag: b for b in new_process.runtime.allocations[0]}
    for record in image.gpu_buffers[0].values():
        assert by_tag[record.tag].snapshot() == record.data


def test_restore_with_pool_skips_context_creation_barrier():
    """The context pool turns a multi-second barrier into ~10 ms."""

    def time_to_resume(use_pool):
        eng, machine, phos, process, app = make_world(use_pool=use_pool)
        if use_pool:
            eng.run_process(phos.boot())
        image = checkpoint_image(eng, phos, process, app)
        machine2 = Machine(eng, name="node1", n_gpus=1)
        phos2 = Phos(eng, machine2, use_context_pool=use_pool)
        if use_pool:
            eng.run_process(phos2.boot())

        def driver(eng):
            t0 = eng.now
            yield from phos2.restore(
                image, gpu_indices=[0], concurrent=True, machine=machine2,
                use_pool=use_pool,
            )
            return eng.now - t0

        elapsed = eng.run_process(driver(eng))
        eng.run()
        return elapsed

    with_pool = time_to_resume(True)
    without = time_to_resume(False)
    assert with_pool < 0.1  # milliseconds, not seconds
    assert without > 1.0    # the §2.3 barrier
    assert with_pool < without / 10


def test_restore_requires_finalized_image():
    from repro.errors import CheckpointError
    from repro.storage.image import CheckpointImage

    eng = Engine()
    machine = Machine(eng, n_gpus=1)
    phos = Phos(eng, machine, use_context_pool=False)

    def driver(eng):
        yield from phos.restore(CheckpointImage(), gpu_indices=[0])

    with pytest.raises(CheckpointError):
        eng.run_process(driver(eng))
