"""Unit tests for NCCL-equivalent collectives and cuBLAS wrappers."""

import pytest

from repro.api import cublas
from repro.api.calls import ApiCategory, LaunchPlan
from repro.api.nccl import NcclCommunicator, nccl_allreduce, nccl_broadcast
from repro.errors import InvalidValueError
from repro.units import GIB, MIB


def make_comm(eng, indices=(0, 1)):
    return NcclCommunicator(eng, list(indices))


def alloc_pair(rt, fill0, fill1):
    b0 = yield from rt.malloc(0, 1 * MIB)
    b1 = yield from rt.malloc(1, 1 * MIB)
    yield from rt.memcpy_h2d(0, b0, payload=fill0, sync=True)
    yield from rt.memcpy_h2d(1, b1, payload=fill1, sync=True)
    return b0, b1


def test_allreduce_sums_across_gpus(eng, dual_process):
    comm = make_comm(eng)

    def app(rt):
        b0, b1 = yield from alloc_pair(rt, 10, 32)
        yield from nccl_allreduce(rt, comm, {0: b0, 1: b1}, sync=True)
        return b0, b1

    b0, b1 = eng.run_process(app(dual_process.runtime))
    assert b0.load_word(b0.addr) == 42
    assert b1.load_word(b1.addr) == 42


def test_broadcast_copies_root_content(eng, dual_process):
    comm = make_comm(eng)

    def app(rt):
        b0, b1 = yield from alloc_pair(rt, 7, 0)
        yield from nccl_broadcast(rt, comm, 0, {0: b0, 1: b1}, sync=True)
        return b0, b1

    b0, b1 = eng.run_process(app(dual_process.runtime))
    assert b1.snapshot() == b0.snapshot()


def test_allreduce_time_formula(eng):
    comm = NcclCommunicator(eng, [0, 1, 2, 3], nvlink_bw=100.0)
    assert comm.allreduce_time(400) == pytest.approx(2 * 3 / 4 * 4.0)
    single = NcclCommunicator(eng, [0])
    assert single.allreduce_time(1 << 30) == 0.0


def test_collective_takes_nvlink_time(eng, dual_process):
    comm = make_comm(eng)

    def app(rt):
        b0 = yield from rt.malloc(0, 1 * GIB)
        b1 = yield from rt.malloc(1, 1 * GIB)
        t0 = rt.engine.now
        yield from nccl_allreduce(rt, comm, {0: b0, 1: b1}, sync=True)
        return rt.engine.now - t0

    elapsed = eng.run_process(app(dual_process.runtime))
    expected = comm.allreduce_time(1 * GIB)
    assert elapsed == pytest.approx(expected, rel=0.01)


def test_mismatched_buffers_rejected(eng, dual_process):
    comm = make_comm(eng)

    def app(rt):
        b0 = yield from rt.malloc(0, 1 * MIB)
        yield from nccl_allreduce(rt, comm, {0: b0}, sync=True)

    with pytest.raises(InvalidValueError):
        eng.run_process(app(dual_process.runtime))


def test_bad_root_rejected(eng, dual_process):
    comm = make_comm(eng)

    def app(rt):
        b0 = yield from rt.malloc(0, 1 * MIB)
        b1 = yield from rt.malloc(1, 1 * MIB)
        yield from nccl_broadcast(rt, comm, 5, {0: b0, 1: b1}, sync=True)

    with pytest.raises(InvalidValueError):
        eng.run_process(app(dual_process.runtime))


def test_split_produces_sub_communicator(eng):
    comm = NcclCommunicator(eng, [0, 1, 2, 3])
    sub = comm.split([0, 1])
    assert sub.size == 2
    with pytest.raises(InvalidValueError):
        comm.split([0, 9])


def test_collective_calls_are_comm_category(eng, dual_process):
    seen = []

    class Rec:
        def plan(self, call):
            seen.append(call)
            return LaunchPlan()

        def on_malloc(self, g, b):
            pass

        def on_free(self, g, b):
            pass

    dual_process.runtime.interceptor = Rec()
    comm = make_comm(eng)

    def app(rt):
        b0, b1 = yield from alloc_pair(rt, 1, 2)
        yield from nccl_allreduce(rt, comm, {0: b0, 1: b1}, sync=True)

    eng.run_process(app(dual_process.runtime))
    comm_calls = [c for c in seen if c.category is ApiCategory.COMM]
    assert len(comm_calls) == 2  # one per rank
    assert {c.gpu_index for c in comm_calls} == {0, 1}
    for c in comm_calls:
        assert len(c.writes) == 1


def test_cublas_sgemm_declared_sets(eng, process):
    seen = []

    class Rec:
        def plan(self, call):
            seen.append(call)
            return LaunchPlan()

        def on_malloc(self, g, b):
            pass

        def on_free(self, g, b):
            pass

    process.runtime.interceptor = Rec()

    def app(rt):
        a = yield from rt.malloc(0, 1 * MIB)
        b = yield from rt.malloc(0, 1 * MIB)
        c = yield from rt.malloc(0, 1 * MIB)
        yield from cublas.sgemm(rt, 0, a, b, c, 128, 128, 128, sync=True)
        return c

    c = eng.run_process(app(process.runtime))
    gemm = [x for x in seen if x.name == "cublasSgemm"][0]
    assert gemm.category is ApiCategory.LIB_COMPUTE
    assert [w.id for w in gemm.writes] == [c.id]
    assert len(gemm.reads) == 2
    assert c.snapshot() != bytes(c.data_size)


def test_cublas_sgemm_accumulate_reads_c(eng, process):
    seen = []

    class Rec:
        def plan(self, call):
            seen.append(call)
            return LaunchPlan()

        def on_malloc(self, g, b):
            pass

        def on_free(self, g, b):
            pass

    process.runtime.interceptor = Rec()

    def app(rt):
        a = yield from rt.malloc(0, 1 * MIB)
        b = yield from rt.malloc(0, 1 * MIB)
        c = yield from rt.malloc(0, 1 * MIB)
        yield from cublas.sgemm(rt, 0, a, b, c, 8, 8, 8, accumulate=True, sync=True)

    eng.run_process(app(process.runtime))
    gemm = [x for x in seen if x.name == "cublasSgemm"][0]
    assert len(gemm.reads) == 3
