"""Unit tests for RangeSet."""

import pytest

from repro.errors import InvalidValueError
from repro.gpu.ranges import RangeSet


def test_membership():
    rs = RangeSet([(10, 20), (30, 40)])
    assert 10 in rs and 19 in rs and 30 in rs
    assert 20 not in rs and 29 not in rs and 9 not in rs


def test_empty_set():
    rs = RangeSet()
    assert 5 not in rs
    assert not rs
    assert len(rs) == 0


def test_add_merges_overlapping():
    rs = RangeSet([(10, 20)])
    rs.add(15, 25)
    assert list(rs) == [(10, 25)]


def test_add_merges_touching():
    rs = RangeSet([(10, 20)])
    rs.add(20, 30)
    assert list(rs) == [(10, 30)]


def test_add_keeps_disjoint():
    rs = RangeSet([(10, 20)])
    rs.add(30, 40)
    assert list(rs) == [(10, 20), (30, 40)]


def test_add_bridges_multiple():
    rs = RangeSet([(0, 5), (10, 15), (20, 25)])
    rs.add(4, 21)
    assert list(rs) == [(0, 25)]


def test_add_before_existing():
    rs = RangeSet([(10, 20)])
    rs.add(0, 5)
    assert list(rs) == [(0, 5), (10, 20)]


def test_empty_range_rejected():
    rs = RangeSet()
    with pytest.raises(InvalidValueError):
        rs.add(5, 5)
    with pytest.raises(InvalidValueError):
        rs.add(7, 3)


def test_covers():
    rs = RangeSet([(10, 20), (30, 40)])
    assert rs.covers(10, 20)
    assert rs.covers(12, 15)
    assert not rs.covers(15, 35)
    assert not rs.covers(0, 5)


def test_total_bytes():
    rs = RangeSet([(0, 10), (20, 25)])
    assert rs.total_bytes() == 15


def test_equality():
    assert RangeSet([(1, 5), (5, 9)]) == RangeSet([(1, 9)])
    assert RangeSet([(1, 5)]) != RangeSet([(1, 6)])
