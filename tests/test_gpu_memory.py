"""Unit tests for device memory: allocator, buffers, word access."""

import pytest

from repro.errors import InvalidAddressError, InvalidValueError, OutOfMemoryError
from repro.gpu.memory import DeviceMemory
from repro.units import GIB, MIB


@pytest.fixture
def mem():
    return DeviceMemory(capacity=1 * GIB)


def test_alloc_returns_buffer_with_logical_size(mem):
    buf = mem.alloc(10 * MIB, tag="weights")
    assert buf.size >= 10 * MIB
    assert buf.tag == "weights"
    assert buf.data_size == mem.default_data_size


def test_alloc_small_buffer_materializes_fully(mem):
    buf = mem.alloc(64)
    assert buf.data_size == 64


def test_alloc_rejects_nonpositive(mem):
    with pytest.raises(InvalidValueError):
        mem.alloc(0)
    with pytest.raises(InvalidValueError):
        mem.alloc(-5)


def test_allocations_are_disjoint(mem):
    bufs = [mem.alloc(1 * MIB) for _ in range(20)]
    ranges = sorted((b.addr, b.end) for b in bufs)
    for (_, end1), (start2, _) in zip(ranges, ranges[1:]):
        assert end1 <= start2


def test_out_of_memory(mem):
    mem.alloc(1 * GIB - 256)
    with pytest.raises(OutOfMemoryError):
        mem.alloc(1 * MIB)


def test_free_allows_reuse(mem):
    buf = mem.alloc(512 * MIB)
    mem.alloc(400 * MIB)
    mem.free(buf)
    again = mem.alloc(512 * MIB)  # fits only if the hole was reclaimed
    assert again.addr == buf.addr


def test_double_free_rejected(mem):
    buf = mem.alloc(1 * MIB)
    mem.free(buf)
    with pytest.raises(InvalidValueError):
        mem.free(buf)


def test_free_coalesces_adjacent_holes(mem):
    a = mem.alloc(300 * MIB)
    b = mem.alloc(300 * MIB)
    c = mem.alloc(300 * MIB)
    mem.free(a)
    mem.free(b)
    # a+b coalesced: a 600 MiB allocation must fit in front of c.
    big = mem.alloc(600 * MIB)
    assert big.end <= c.addr


def test_used_accounting(mem):
    assert mem.used == 0
    buf = mem.alloc(1 * MIB)
    assert mem.used == buf.size
    mem.free(buf)
    assert mem.used == 0
    assert mem.free_bytes == mem.capacity


def test_resolve_maps_addresses_to_buffers(mem):
    a = mem.alloc(1 * MIB)
    b = mem.alloc(1 * MIB)
    assert mem.resolve(a.addr) is a
    assert mem.resolve(a.addr + 100) is a
    assert mem.resolve(b.end - 1) is b
    assert mem.resolve(b.end) is None
    assert mem.resolve(a.addr - 1) is None


def test_resolve_after_free(mem):
    a = mem.alloc(1 * MIB)
    mem.free(a)
    assert mem.resolve(a.addr) is None


def test_buffers_iterates_in_address_order(mem):
    bufs = [mem.alloc(1 * MIB) for _ in range(5)]
    assert list(mem.buffers()) == sorted(bufs, key=lambda b: b.addr)


def test_store_and_load_word(mem):
    buf = mem.alloc(256)
    buf.store_word(buf.addr + 16, 0xDEADBEEF)
    assert buf.load_word(buf.addr + 16) == 0xDEADBEEF


def test_word_access_wraps_to_64_bits(mem):
    buf = mem.alloc(64)
    buf.store_word(buf.addr, -1)
    assert buf.load_word(buf.addr) == 2**64 - 1


def test_access_outside_buffer_faults(mem):
    buf = mem.alloc(64)
    with pytest.raises(InvalidAddressError):
        buf.load_word(buf.addr - 8)
    with pytest.raises(InvalidAddressError):
        buf.store_word(buf.end, 1)


def test_access_beyond_materialized_prefix_faults(mem):
    buf = mem.alloc(10 * MIB)  # prefix is default_data_size bytes
    with pytest.raises(InvalidAddressError):
        buf.load_word(buf.addr + buf.data_size)


def test_memory_level_word_access(mem):
    buf = mem.alloc(256)
    mem.store_word(buf.addr + 8, 77)
    assert mem.load_word(buf.addr + 8) == 77


def test_memory_level_unmapped_access_faults(mem):
    with pytest.raises(InvalidAddressError):
        mem.load_word(0x1234)
    with pytest.raises(InvalidAddressError):
        mem.store_word(0x1234, 1)


def test_snapshot_roundtrip(mem):
    buf = mem.alloc(128)
    buf.store_word(buf.addr, 42)
    snap = buf.snapshot()
    buf.store_word(buf.addr, 99)
    buf.load_bytes(snap)
    assert buf.load_word(buf.addr) == 42


def test_load_bytes_size_mismatch_rejected(mem):
    buf = mem.alloc(128)
    with pytest.raises(InvalidValueError):
        buf.load_bytes(b"\x00" * 7)


def test_fresh_buffer_is_zeroed(mem):
    buf = mem.alloc(64)
    assert buf.snapshot() == b"\x00" * buf.data_size


def test_capacity_validation():
    with pytest.raises(InvalidValueError):
        DeviceMemory(capacity=0)
