"""Differential property test: multi-domain vs. single-domain execution.

The clock-domain refactor (PR 8) claims that sharding a world into
per-machine :class:`ClockDomain` objects under the conservative sync
loop produces *exactly* the execution a single shared engine produces —
same per-process firing traces, same final clocks, same event counts.
This suite generates randomized 2–4-machine topologies (ring channels
plus random extras, continuous random latencies so cross-domain arrivals
never collide with the local timestamp grid) and a random program per
machine — timeouts, contended resource holds, ``AllOf``/``AnyOf``
fan-ins, channel sends/receives, cross-domain interrupts — then runs the
identical program three ways:

* ``single``  — one plain :class:`Engine`, channels in degenerate
  (same-engine) mode;
* ``world1``  — a one-domain :class:`World` (the golden-figure
  configuration behind ``REPRO_CLOCK_DOMAINS=1``);
* ``multi``   — one :class:`ClockDomain` per machine.

All three must agree on everything observable.  The program is built as
a seed-derived op list first and interpreted second, so the only
variable between runs is the scheduling substrate.
"""

from __future__ import annotations

import random

import pytest

from repro.sim import Engine
from repro.sim.domains import DomainChannel, World
from repro.sim.engine import Interrupt
from repro.sim.resources import Resource, acquired

#: Few distinct delays: same-timestamp collisions *within* a domain are
#: the hard case for FIFO-within-timestamp equivalence.
DELAYS = [0.0, 0.25, 0.5, 0.5, 1.0, 1.0, 2.0]

OP_KINDS = ["timeout", "timeout", "acquire", "send", "recv",
            "anyof", "allof", "xint"]


def build_topology(seed: int) -> dict:
    """A deterministic random topology + program.

    Channel latencies are drawn from a continuous range well off the
    DELAYS grid: conservative multi-domain execution guarantees order
    equivalence except for *exact* same-instant cross-domain bucket
    collisions (see ``sim/domains.py``), and physical link latencies
    never sit on a workload's round-number grid anyway.
    """
    rng = random.Random(seed)
    n_machines = rng.randrange(2, 5)
    # Directed ring both ways, plus a few random extra channel pairs.
    pairs = set()
    for i in range(n_machines):
        pairs.add((i, (i + 1) % n_machines))
        pairs.add(((i + 1) % n_machines, i))
    for _ in range(rng.randrange(0, n_machines)):
        a, b = rng.sample(range(n_machines), 2)
        pairs.add((a, b))
    channels = {p: rng.uniform(2e-6, 9e-6) for p in sorted(pairs)}
    out_of = {m: sorted(d for (s, d) in channels if s == m)
              for m in range(n_machines)}
    into = {m: sorted(s for (s, d) in channels if d == m)
            for m in range(n_machines)}

    machines = []
    for m in range(n_machines):
        n_procs = rng.randrange(2, 4)
        capacity = rng.randrange(1, 3)
        procs = []
        for _ in range(n_procs):
            steps = []
            for _ in range(rng.randrange(2, 6)):
                kind = rng.choice(OP_KINDS)
                if kind == "timeout":
                    steps.append(("timeout", rng.choice(DELAYS)))
                elif kind == "acquire":
                    steps.append(("acquire", rng.choice(DELAYS)))
                elif kind == "send":
                    # The continuous jitter before every cross-domain
                    # emission keeps each arrival instant unique: exact
                    # same-instant cross-domain collisions are the one
                    # case conservative sync does not order-guarantee
                    # (module docstring of sim/domains.py).
                    steps.append(("send", rng.choice(out_of[m]),
                                  rng.randrange(100),
                                  rng.uniform(1e-7, 9e-7)))
                elif kind == "recv":
                    steps.append(("recv", rng.choice(into[m])))
                elif kind == "xint":
                    dst = rng.choice(out_of[m])
                    steps.append(("xint", dst, rng.randrange(4),
                                  rng.choice(DELAYS),
                                  rng.uniform(1e-7, 9e-7)))
                else:
                    steps.append((kind, [rng.choice(DELAYS)
                                         for _ in range(rng.randrange(1, 4))]))
            procs.append(steps)
        machines.append({"n_procs": n_procs, "capacity": capacity,
                         "procs": procs})
    return {"n_machines": n_machines, "channels": channels,
            "machines": machines}


def run_topology(topo: dict, mode: str) -> tuple:
    """Interpret the topology's program on one scheduling substrate."""
    n = topo["n_machines"]
    world = None
    if mode == "single":
        eng = Engine()
        engines = [eng] * n
    elif mode == "world1":
        world = World()
        dom = world.domain("all")
        engines = [dom] * n
    elif mode == "multi":
        world = World()
        engines = [world.domain(f"m{i}") for i in range(n)]
    else:  # pragma: no cover - suite misuse
        raise ValueError(mode)

    chans = {}
    for (a, b), lat in topo["channels"].items():
        if engines[a] is engines[b]:
            chans[(a, b)] = DomainChannel.local(
                engines[a], lat, name=f"c{a}->{b}")
        else:
            chans[(a, b)] = world.channel(
                engines[a], engines[b], lat, name=f"c{a}->{b}")
    resources = [Resource(engines[m], capacity=topo["machines"][m]["capacity"],
                          name=f"r{m}") for m in range(n)]

    traces: dict = {}
    procs: dict = {}

    def body(m: int, p: int, steps: list):
        tr = traces[(m, p)]
        eng = engines[m]
        res = resources[m]
        for i, step in enumerate(steps):
            try:
                kind = step[0]
                if kind == "timeout":
                    yield eng.timeout(step[1])
                    tr.append(("t", i, eng.now))
                elif kind == "acquire":
                    req = yield from acquired(res)
                    try:
                        yield eng.timeout(step[1])
                    finally:
                        res.release(req)
                    tr.append(("r", i, eng.now))
                elif kind == "send":
                    _, dst, token, jitter = step
                    yield eng.timeout(jitter)
                    chans[(m, dst)].send((m, p, i, token))
                    tr.append(("s", i, eng.now))
                elif kind == "recv":
                    _, src = step
                    val = yield chans[(src, m)].recv()
                    tr.append(("g", i, eng.now, val))
                elif kind == "xint":
                    _, dst, tp, delay, jitter = step
                    yield eng.timeout(delay + jitter)
                    target = procs.get((dst, tp % len(procs_per[dst])))
                    # Sent unconditionally: delivery drops the message
                    # if the target finished in flight, which keeps the
                    # decision independent of how far the target's
                    # domain happens to have advanced.
                    if target is not None:
                        chans[(m, dst)].interrupt(target)
                    tr.append(("x", i, eng.now))
                elif kind == "anyof":
                    idx, _ = yield eng.any_of(
                        [eng.timeout(d) for d in step[1]])
                    tr.append(("any", i, eng.now, idx))
                else:
                    vals = yield eng.all_of(
                        [eng.timeout(d, value=j)
                         for j, d in enumerate(step[1])])
                    tr.append(("all", i, eng.now, tuple(vals)))
            except Interrupt:
                tr.append(("caught", i, eng.now))
        return p

    procs_per = {m: topo["machines"][m]["procs"] for m in range(n)}
    for m in range(n):
        for p, steps in enumerate(procs_per[m]):
            traces[(m, p)] = []
    for m in range(n):
        for p, steps in enumerate(procs_per[m]):
            procs[(m, p)] = engines[m].spawn(body(m, p, steps),
                                             name=f"m{m}p{p}")
    if world is not None:
        world.run()
        clock = world.now
        scheduled = world.events_scheduled
        executed = world.events_executed
    else:
        engines[0].run()
        clock = engines[0].now
        scheduled = engines[0].events_scheduled
        executed = engines[0].events_executed
    finished = {k: (p.triggered, p.ok if p.triggered else None)
                for k, p in procs.items()}
    return traces, finished, clock, scheduled, executed


@pytest.mark.parametrize("seed", range(24))
def test_multi_domain_matches_single(seed):
    topo = build_topology(seed)
    single = run_topology(topo, "single")
    world1 = run_topology(topo, "world1")
    multi = run_topology(topo, "multi")
    assert world1[0] == single[0], "one-domain world trace diverged"
    assert world1[1:] == single[1:], "one-domain world state diverged"
    assert multi[0] == single[0], "multi-domain trace diverged"
    assert multi[1] == single[1], "multi-domain completion state diverged"
    assert multi[2] == pytest.approx(single[2], abs=0.0), \
        "multi-domain frontier clock diverged"
    assert multi[3:] == single[3:], "multi-domain event counts diverged"


@pytest.mark.parametrize("seed", [2, 9])
def test_topologies_actually_cross_domains(seed):
    """Sanity: the soups really send cross-domain traffic (guards
    against a silently-degenerate generator)."""
    topo = build_topology(seed)
    assert topo["n_machines"] >= 2
    traces, _, _, _, _ = run_topology(topo, "multi")
    ops = [entry[0] for tr in traces.values() for entry in tr]
    assert "s" in ops or "x" in ops, "no cross-domain sends in the soup"


def test_multi_domain_rounds_and_skew():
    """The conservative loop actually iterates and records skew."""
    topo = build_topology(1)
    world = World()
    engines = [world.domain(f"m{i}") for i in range(topo["n_machines"])]
    a, b = engines[0], engines[1]
    ch = world.channel(a, b, 5e-6)

    def sender():
        yield a.timeout(1.0)
        ch.send("x")

    def receiver():
        val = yield ch.recv()
        assert val == "x"

    a.spawn(sender())
    b.spawn(receiver())
    world.run()
    assert world.rounds >= 1
    assert world.skew_max >= 0.0
