"""Unit tests: BufferHashCache, dirty-chunk math, delta aggregates."""

import numpy as np
import pytest

from repro.core.protocols.base import ProtocolConfig
from repro.errors import CheckpointError, TornImageError
from repro.storage.delta import (
    DeltaBufferRecord,
    DeltaImage,
    dirty_chunk_indices,
    dirty_chunk_span_bytes,
    hash_chunk,
)
from repro.storage.hashcache import (
    KILL_SWITCH_ENV,
    BufferHashCache,
    hash_cache_enabled,
)


# -- BufferHashCache ---------------------------------------------------------

def _promote(cache, bid=1, image_id="img-1", addr=0x1000, size=4096,
             data_len=1024, chunk_bytes=256, hashes=None):
    cache.promote(bid, image_id=image_id, addr=addr, size=size,
                  data_len=data_len, chunk_bytes=chunk_bytes,
                  hashes=hashes or [b"h0", b"h1", b"h2", b"h3"])


def test_note_write_without_entry_is_noop():
    cache = BufferHashCache()
    cache.note_write(99, 0, 128)  # must not raise or create state
    assert 99 not in cache.entries


def test_note_write_accumulates_pending():
    cache = BufferHashCache()
    _promote(cache)
    cache.note_write(1, 10, 20)
    cache.note_write(1, 15, 40)
    cache.note_write(1, 40, 40)  # empty span ignored
    entry = cache.entries[1]
    assert list(entry.pending) == [(10, 40)]


def test_valid_entry_requires_parent_and_layout():
    cache = BufferHashCache()
    _promote(cache, image_id="parent")
    ok = dict(parent_id="parent", addr=0x1000, size=4096, data_len=1024,
              chunk_bytes=256)
    assert cache.valid_entry(1, **ok) is not None
    for bad in (
        dict(ok, parent_id="other"),
        dict(ok, addr=0x2000),
        dict(ok, size=8192),
        dict(ok, data_len=512),
        dict(ok, chunk_bytes=128),
    ):
        assert cache.valid_entry(1, **bad) is None
    assert cache.valid_entry(2, **ok) is None


def test_promote_replaces_and_clears_pending():
    cache = BufferHashCache()
    _promote(cache, image_id="a")
    cache.note_write(1, 0, 100)
    _promote(cache, image_id="b", hashes=[b"x"] * 4)
    entry = cache.entries[1]
    assert entry.image_id == "b"
    assert not entry.pending
    assert entry.hashes == [b"x"] * 4


def test_forget_drops_entry():
    cache = BufferHashCache()
    _promote(cache)
    cache.forget(1)
    cache.forget(1)  # idempotent
    assert 1 not in cache.entries


def test_dirty_extent_chunk_size_agnostic():
    cache = BufferHashCache()
    _promote(cache, image_id="p", chunk_bytes=256)
    cache.note_write(1, 5, 9)
    pending = cache.dirty_extent(1, parent_id="p", addr=0x1000, size=4096,
                                 data_len=1024)
    assert list(pending) == [(5, 9)]
    # Layout mismatch or wrong parent: None (ship the full buffer).
    assert cache.dirty_extent(1, parent_id="q", addr=0x1000, size=4096,
                              data_len=1024) is None
    assert cache.dirty_extent(1, parent_id="p", addr=0x1000, size=4096,
                              data_len=999) is None


def test_kill_switch_env(monkeypatch):
    monkeypatch.delenv(KILL_SWITCH_ENV, raising=False)
    assert hash_cache_enabled()
    assert BufferHashCache().enabled
    monkeypatch.setenv(KILL_SWITCH_ENV, "1")
    assert not hash_cache_enabled()
    assert not BufferHashCache().enabled


# -- vectorized dirty-chunk math --------------------------------------------

def test_dirty_chunk_indices_basic():
    idx = dirty_chunk_indices([(0, 1), (300, 700)], data_len=1024,
                              chunk_bytes=256)
    assert idx.tolist() == [0, 1, 2]
    assert idx.dtype == np.int64


def test_dirty_chunk_indices_clips_and_dedups():
    idx = dirty_chunk_indices([(-50, 10), (10, 20), (1000, 4000)],
                              data_len=1024, chunk_bytes=256)
    assert idx.tolist() == [0, 3]
    assert dirty_chunk_indices([], 1024, 256).size == 0
    assert dirty_chunk_indices([(2000, 3000)], 1024, 256).size == 0
    assert dirty_chunk_indices([(0, 10)], 0, 256).size == 0


def test_dirty_chunk_span_bytes_tail_clip():
    # data_len 1000 -> chunks of 256, last chunk is 232 bytes.
    assert dirty_chunk_span_bytes([(0, 1)], 1000, 256) == 256
    assert dirty_chunk_span_bytes([(900, 950)], 1000, 256) == 232
    assert dirty_chunk_span_bytes([(0, 1000)], 1000, 256) == 1000
    assert dirty_chunk_span_bytes([], 1000, 256) == 0


# -- O(1) DeltaImage aggregates ---------------------------------------------

def _rec(bid, n_chunks=4, local=(), cb=256):
    data = bytes(cb) * n_chunks
    rec = DeltaBufferRecord(
        buffer_id=bid, addr=0x1000 * bid, size=n_chunks * cb,
        data_len=n_chunks * cb,
        hashes=[hash_chunk(data[i * cb:(i + 1) * cb])
                for i in range(n_chunks)],
    )
    for i in local:
        rec.chunks[i] = data[i * cb:(i + 1) * cb]
    return rec


def test_add_delta_record_maintains_aggregates():
    image = DeltaImage(name="x", sealed=True)
    image.add_delta_record(0, _rec(1, local=(0, 2)))
    image.add_delta_record(0, _rec(2, local=()))
    image.add_delta_record(1, _rec(3, local=(1,)))
    assert image.chunks_written == 3
    assert image.chunks_reused == 9
    assert image.stored_chunk_bytes == 3 * 256
    assert image.reused_buffers == 1
    assert image.gpu_bytes(0) == 2 * 1024
    assert image.gpu_bytes() == 3 * 1024
    assert image.stored_bytes() == 3 * 256


def test_add_delta_record_rejects_duplicates():
    image = DeltaImage(name="x")
    image.add_delta_record(0, _rec(1))
    with pytest.raises(TornImageError, match="recorded twice"):
        image.add_delta_record(0, _rec(1))


def test_cpu_page_aggregates_track_overwrite_and_drop():
    image = DeltaImage(name="x")
    image.add_cpu_page(0, b"a" * 64)
    image.add_cpu_page(1, b"b" * 64)
    image.add_cpu_page(0, b"c" * 32)  # overwrite shrinks
    assert image.stored_page_bytes == 96
    image.drop_cpu_page(1)
    image.drop_cpu_page(1)  # idempotent
    assert image.stored_page_bytes == 32
    assert image.stored_bytes() == 32


# -- ProtocolConfig content_chunk_bytes -------------------------------------

@pytest.mark.parametrize("bad", [0, -256, 3, 100, 257])
def test_content_chunk_bytes_must_be_power_of_two(bad):
    with pytest.raises(CheckpointError, match="power of two"):
        ProtocolConfig(content_chunk_bytes=bad)


@pytest.mark.parametrize("ok", [1, 64, 256, 1024, 1 << 20])
def test_content_chunk_bytes_accepts_powers_of_two(ok):
    assert ProtocolConfig(content_chunk_bytes=ok).content_chunk_bytes == ok


def test_continuous_config_validation():
    with pytest.raises(CheckpointError, match="rounds"):
        ProtocolConfig(rounds=0)
    with pytest.raises(CheckpointError, match="interval"):
        ProtocolConfig(interval=-1.0)
    with pytest.raises(CheckpointError, match="drain_depth"):
        ProtocolConfig(drain_depth=0)
