"""Shared fixtures: a small testbed machine and a ready-to-run process."""

import pytest

from repro.api.runtime import GpuProcess
from repro.cluster import Machine
from repro.gpu.context import GpuContext
from repro.sim import Engine


@pytest.fixture
def eng():
    return Engine()


@pytest.fixture
def machine(eng):
    return Machine(eng, name="node0", n_gpus=2)


@pytest.fixture
def process(eng, machine):
    """A single-GPU process with a context already installed."""
    proc = GpuProcess(eng, machine, name="app", gpu_indices=[0], cpu_pages=16)
    proc.runtime.adopt_context(0, GpuContext(gpu_index=0))
    return proc


@pytest.fixture
def dual_process(eng, machine):
    """A process owning both GPUs, contexts installed."""
    proc = GpuProcess(eng, machine, name="dual", gpu_indices=[0, 1], cpu_pages=16)
    for i in (0, 1):
        proc.runtime.adopt_context(i, GpuContext(gpu_index=i, nccl_scope=2))
    return proc
