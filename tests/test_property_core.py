"""Property-based tests for the core data structures (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.memory import DeviceMemory
from repro.gpu.ranges import RangeSet
from repro.sim import Engine
from repro.sim.fluid import FluidLink
from repro.units import MIB


# --- RangeSet vs a naive model ----------------------------------------------------

ranges_strategy = st.lists(
    st.tuples(st.integers(0, 400), st.integers(1, 60)).map(
        lambda t: (t[0], t[0] + t[1])
    ),
    min_size=0, max_size=12,
)


@given(ranges_strategy, st.integers(-10, 500))
def test_rangeset_membership_matches_naive_model(ranges, probe):
    rs = RangeSet(ranges)
    naive = set()
    for start, end in ranges:
        naive.update(range(start, end))
    assert (probe in rs) == (probe in naive)


@given(ranges_strategy)
def test_rangeset_stays_normalized(ranges):
    rs = RangeSet(ranges)
    items = list(rs)
    for (s1, e1), (s2, e2) in zip(items, items[1:]):
        assert e1 < s2, "ranges must stay disjoint, sorted, non-touching"
    naive = set()
    for start, end in ranges:
        naive.update(range(start, end))
    assert rs.total_bytes() == len(naive)


@given(ranges_strategy, ranges_strategy)
def test_rangeset_union_is_commutative(a, b):
    ab = RangeSet(a)
    for s, e in b:
        ab.add(s, e)
    ba = RangeSet(b)
    for s, e in a:
        ba.add(s, e)
    assert ab == ba


# --- device memory allocator --------------------------------------------------------


@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(1, 4 * MIB)),
            st.tuples(st.just("free"), st.integers(0, 30)),
        ),
        min_size=1, max_size=40,
    )
)
@settings(max_examples=50)
def test_allocator_invariants(ops):
    mem = DeviceMemory(capacity=64 * MIB)
    live = []
    for op, arg in ops:
        if op == "alloc":
            try:
                live.append(mem.alloc(arg))
            except Exception:
                continue  # OOM is legitimate
        elif live:
            buf = live.pop(arg % len(live))
            mem.free(buf)
    # Invariant 1: live allocations are pairwise disjoint.
    spans = sorted((b.addr, b.end) for b in live)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2
    # Invariant 2: accounting matches the live set.
    assert mem.used == sum(b.size for b in live)
    # Invariant 3: resolve() agrees with the live set.
    for b in live:
        assert mem.resolve(b.addr) is b
        assert mem.resolve(b.end - 1) is b
    # Invariant 4: freeing everything restores full capacity.
    for b in list(live):
        mem.free(b)
    assert mem.free_bytes == mem.capacity
    big = mem.alloc(32 * MIB)  # no fragmentation after full free
    assert big.size >= 32 * MIB


# --- fluid link conservation -----------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.floats(0.0, 5.0),       # arrival time
            st.floats(1.0, 500.0),     # bytes
            st.floats(1.0, 50.0),      # rate cap
        ),
        min_size=1, max_size=8,
    )
)
@settings(max_examples=40, deadline=None)
def test_fluid_link_conserves_and_respects_caps(flows):
    eng = Engine()
    link = FluidLink(eng, bandwidth=40.0)
    done_times = {}

    def mover(eng, i, delay, nbytes, cap):
        yield eng.timeout(delay)
        start = eng.now
        yield from link.flow(nbytes, rate_cap=cap)
        done_times[i] = (start, eng.now, nbytes, cap)

    for i, (delay, nbytes, cap) in enumerate(flows):
        eng.spawn(mover(eng, i, delay, nbytes, cap))
    eng.run()
    assert len(done_times) == len(flows)
    for i, (start, end, nbytes, cap) in done_times.items():
        elapsed = end - start
        # No flow may beat its own rate cap or the link bandwidth.
        min_time = nbytes / min(cap, link.bandwidth)
        assert elapsed >= min_time - 1e-6
        # And a lone flow would finish in nbytes/min(cap, bw); with
        # contention it can only be slower — sanity upper bound:
        assert elapsed <= (nbytes / 1.0) + 10.0


# --- speculation safety over random argument-addressed kernels --------------------------


@given(
    st.integers(1, 6),                       # number of buffers
    st.lists(st.integers(0, 5), min_size=2, max_size=6),  # arg pattern
    st.integers(1, 8),                       # threads
)
@settings(max_examples=60)
def test_speculation_covers_actual_writes_for_arg_addressed_kernels(
    n_bufs, pattern, n_threads
):
    """For kernels whose every access flows from an argument, the
    speculated write set must cover every actual write (safety)."""
    from repro.api.calls import ApiCall, ApiCategory
    from repro.core.signatures import SignatureCache
    from repro.core.speculation import speculate_call
    from repro.core.tracker import BufferTable
    from repro.gpu.interpreter import AccessKind, run_kernel
    from repro.gpu.program import build_copy, build_fill, build_inplace_add

    mem = DeviceMemory(capacity=16 * MIB, default_data_size=512)
    table = BufferTable(0)
    bufs = []
    for i in range(n_bufs):
        b = mem.alloc(4096, tag=f"b{i}")
        table.register(b)
        bufs.append(b)
    builders = [build_copy, build_fill, build_inplace_add]
    prog = builders[pattern[0] % len(builders)]()
    if prog.name == "dev_copy":
        args = [bufs[pattern[0] % n_bufs].addr,
                bufs[pattern[1] % n_bufs].addr, n_threads]
    elif prog.name == "fill":
        args = [bufs[pattern[0] % n_bufs].addr, n_threads, 7]
    else:
        args = [bufs[pattern[0] % n_bufs].addr, n_threads]
    call = ApiCall(ApiCategory.OPAQUE_KERNEL, prog.name, 0,
                   program=prog, args=args, n_threads=n_threads)
    sets = speculate_call(call, table, SignatureCache())
    run = run_kernel(prog, args, n_threads, mem, detailed=True)
    write_ranges = sets.write_ranges()
    for rec in run.accesses:
        if rec.kind is AccessKind.WRITE:
            assert rec.addr in write_ranges
