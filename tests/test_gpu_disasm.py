"""Unit tests for the ISA disassembler."""

from repro.gpu.disasm import disassemble, format_instr
from repro.gpu.instrument import instrument_program
from repro.gpu.isa import Instr, Op
from repro.gpu.program import (
    STANDARD_BUILDERS,
    build_global_reader,
    build_reduce_sum,
    build_saxpy,
)


def test_disassemble_saxpy_lists_every_instruction():
    prog = build_saxpy()
    listing = disassemble(prog)
    assert listing.splitlines()[0].startswith("// saxpy:")
    # One line per instruction (plus header and label lines).
    body = [l for l in listing.splitlines() if ":  " in l]
    assert len(body) == len(prog.instrs)
    assert "st.global" in listing
    assert "ld.global" in listing


def test_labels_rendered():
    listing = disassemble(build_reduce_sum())
    assert "loop:" in listing
    assert "store:" in listing
    assert "end:" in listing


def test_globals_rendered():
    prog = build_global_reader("gr", "lookup_table", 0xBEEF00)
    listing = disassemble(prog)
    assert ".global lookup_table = 0xbeef00" in listing
    assert "&lookup_table" in listing


def test_instrumented_twin_shows_checks():
    twin = instrument_program(build_saxpy(), check_reads=True)
    listing = disassemble(twin)
    assert "instrumented twin" in listing
    assert "chk.write" in listing
    assert "chk.read" in listing


def test_every_standard_program_disassembles():
    for builder in STANDARD_BUILDERS.values():
        listing = disassemble(builder())
        assert "exit" in listing


def test_format_instr_covers_all_shapes():
    samples = [
        Instr(op=Op.SETI, rd=1, imm=5),
        Instr(op=Op.MOV, rd=1, ra=2),
        Instr(op=Op.ADD, rd=0, ra=1, rb=2),
        Instr(op=Op.ADDI, rd=0, ra=1, imm=8),
        Instr(op=Op.TID, rd=3),
        Instr(op=Op.NTID, rd=3),
        Instr(op=Op.JMP, label="x"),
        Instr(op=Op.BLT, ra=1, rb=2, label="x"),
        Instr(op=Op.EXIT),
    ]
    for ins in samples:
        assert format_instr(ins)
