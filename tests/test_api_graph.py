"""Unit tests for CUDA graph support (§9)."""

import pytest

from repro.api.graph import CudaGraph
from repro.errors import InvalidValueError
from repro.gpu.cost_model import KernelCost
from repro.gpu.program import build_fill, build_scale
from repro.units import MIB


def words(buf, n):
    return [buf.load_word(buf.addr + 8 * i) for i in range(n)]


def test_capture_records_without_executing(eng, process):
    rt = process.runtime

    def app(rt):
        buf = yield from rt.malloc(0, 512)
        yield from rt.graph_begin_capture(0, name="g")
        result = yield from rt.launch_kernel(0, build_fill(), [buf.addr, 4, 9], 4)
        assert result is None  # recorded, not executed
        graph = yield from rt.graph_end_capture(0)
        yield from rt.device_synchronize(0)
        return buf, graph

    buf, graph = eng.run_process(app(rt))
    assert len(graph) == 1
    assert graph.instantiated
    assert words(buf, 4) == [0, 0, 0, 0]  # nothing ran during capture


def test_graph_launch_replays_nodes(eng, process):
    rt = process.runtime

    def app(rt):
        x = yield from rt.malloc(0, 512)
        y = yield from rt.malloc(0, 512)
        yield from rt.graph_begin_capture(0)
        yield from rt.memcpy_h2d(0, x, payload=2)
        yield from rt.launch_kernel(0, build_scale(factor=3),
                                    [x.addr, y.addr, 4], 4)
        graph = yield from rt.graph_end_capture(0)
        yield from rt.graph_launch(0, graph, sync=True)
        return x, y, graph

    x, y, graph = eng.run_process(app(rt))
    assert len(graph) == 2
    assert words(y, 4) == [6, 6, 6, 6]


def test_graph_relaunch_is_repeatable(eng, process):
    rt = process.runtime

    def app(rt):
        buf = yield from rt.malloc(0, 512)
        from repro.gpu.program import build_inplace_add

        graph = CudaGraph("inc")
        graph.add_kernel_node(build_inplace_add(), [buf.addr, 4], 4)
        graph.instantiate()
        for _ in range(3):
            yield from rt.graph_launch(0, graph, sync=True)
        return buf

    buf = eng.run_process(app(rt))
    assert words(buf, 4) == [3, 3, 3, 3]


def test_explicit_graph_construction(eng, process):
    rt = process.runtime

    def app(rt):
        buf = yield from rt.malloc(0, 512)
        graph = CudaGraph("explicit")
        graph.add_memcpy_node(buf, payload=5)
        graph.add_kernel_node(build_fill(), [buf.addr, 2, 8], 2,
                              cost=KernelCost(flops=1e9))
        graph.instantiate()
        yield from rt.graph_launch(0, graph, sync=True)
        return buf

    buf = eng.run_process(app(rt))
    assert words(buf, 4) == [8, 8, 5, 5]


def test_uninstantiated_graph_rejected(eng, process):
    rt = process.runtime

    def app(rt):
        graph = CudaGraph("raw")
        yield from rt.graph_launch(0, graph)

    with pytest.raises(InvalidValueError, match="instantiated"):
        eng.run_process(app(rt))


def test_modify_after_instantiate_rejected():
    graph = CudaGraph("frozen").instantiate()
    with pytest.raises(InvalidValueError):
        graph.add_kernel_node(build_fill(), [0, 0, 0], 1)


def test_double_capture_rejected(eng, process):
    rt = process.runtime

    def app(rt):
        yield from rt.graph_begin_capture(0)
        yield from rt.graph_begin_capture(0)

    with pytest.raises(InvalidValueError, match="already capturing"):
        eng.run_process(app(rt))


def test_end_without_begin_rejected(eng, process):
    rt = process.runtime

    def app(rt):
        yield from rt.graph_end_capture(0)

    with pytest.raises(InvalidValueError, match="not capturing"):
        eng.run_process(app(rt))


def test_graph_nodes_flow_through_interception(eng, process):
    """§9's compatibility claim: replayed nodes hit the frontend like
    any other launch — speculation sees each node's arguments."""
    from repro.api.calls import ApiCategory, LaunchPlan

    seen = []

    class Rec:
        def plan(self, call):
            seen.append(call)
            return LaunchPlan()

        def on_malloc(self, g, b):
            pass

        def on_free(self, g, b):
            pass

    rt = process.runtime

    def app(rt):
        buf = yield from rt.malloc(0, 512)
        yield from rt.graph_begin_capture(0)
        yield from rt.launch_kernel(0, build_fill(), [buf.addr, 4, 1], 4)
        graph = yield from rt.graph_end_capture(0)
        rt.interceptor = Rec()
        yield from rt.graph_launch(0, graph, sync=True)

    eng.run_process(app(rt))
    kernel_calls = [c for c in seen if c.category is ApiCategory.OPAQUE_KERNEL]
    assert len(kernel_calls) == 1
    assert kernel_calls[0].name == "fill"
    assert kernel_calls[0].args  # arguments visible to speculation


def test_graph_launch_during_cow_checkpoint_is_guarded(eng, machine):
    """A graph launched mid-checkpoint gets per-node CoW protection."""
    from repro.api.runtime import GpuProcess
    from repro.core.daemon import Phos
    from repro.core.quiesce import quiesce
    from repro.gpu.context import GpuContext

    from tests.toyapp import image_gpu_state

    phos = Phos(eng, machine, use_context_pool=False)
    process = GpuProcess(eng, machine, name="gapp", gpu_indices=[0], cpu_pages=4)
    process.runtime.adopt_context(0, GpuContext(gpu_index=0))
    phos.attach(process)
    rt = process.runtime

    def driver(eng):
        buf = yield from rt.malloc(0, 64 * MIB, tag="victim")
        yield from rt.memcpy_h2d(0, buf, payload=1, sync=True)
        expected = buf.snapshot()
        graph = CudaGraph("writer")
        graph.add_kernel_node(build_fill(), [buf.addr, 8, 99], 8,
                              cost=KernelCost(flops=1e9))
        graph.instantiate()
        yield from quiesce(eng, [process])
        handle = phos.checkpoint(process, mode="cow")
        # The graph's node writes `victim` while it is being copied.
        yield from rt.graph_launch(0, graph, sync=True)
        image, session = yield handle
        return image, session, buf, expected

    image, session, buf, expected = eng.run_process(driver(eng))
    eng.run()
    assert not session.aborted
    got = image_gpu_state(image)
    assert got[(0, buf.addr)] == expected  # t1 content, not the 99s
    assert buf.load_word(buf.addr) == 99   # the graph really ran
