"""The parallel experiment engine: determinism, merge order, failures.

Two layers of coverage:

* **Engine unit tests** — declared-order merge under out-of-order
  completion, failed cells surfacing as :class:`CellError` with their
  cell key (runner exceptions *and* dead workers, which must break the
  pool instead of hanging the merge), the ``REPRO_NO_PARALLEL``/
  pickling/nested-worker fallbacks, job resolution precedence, and the
  warm ``Program`` cache.
* **Figure golden bit-identity** — the four goldened figures must
  format identically at ``--jobs 1`` (in-process serial) and
  ``--jobs 4`` (spawned pool).  CI re-runs these with
  ``REPRO_NO_FASTPATH=1`` (see the ``parallel-matrix`` job), covering
  the fast-path-off half of the determinism matrix.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro import parallel
from repro.parallel import Cell, CellError
from repro.parallel import engine as parallel_engine
from repro.parallel.engine import (
    AUTO_ENV,
    JOBS_ENV,
    NO_PARALLEL_ENV,
    WORKER_ENV,
)

GOLDENS = Path(__file__).parent / "goldens"


# -- module-level runners (pool workers import these by name) ---------------------

def echo_cell(cell: Cell) -> tuple:
    return ("ran", cell.key, cell.config.get("value"))


def sleepy_cell(cell: Cell) -> tuple:
    # Later-declared cells sleep less, so pool completion order is the
    # reverse of declared order — the merge must undo that.
    time.sleep(cell.config["sleep_s"])
    return cell.key


def boom_cell(cell: Cell):
    if cell.config.get("boom"):
        raise ValueError(f"injected failure in {cell.key}")
    return cell.key


def die_cell(cell: Cell):
    if cell.config.get("die"):
        os._exit(3)  # simulate a segfaulting worker, not an exception
    return cell.key


def image_id_cell(cell: Cell) -> tuple:
    # Hold the worker long enough that both pool workers mint ids
    # concurrently (each spawned worker restarts the module counter).
    from repro.storage.image import CheckpointImage

    time.sleep(cell.config.get("sleep_s", 0.0))
    return os.getpid(), [CheckpointImage(name=f"{cell.key}-{i}").id
                         for i in range(4)]


@pytest.fixture(scope="module", autouse=True)
def _pool_cleanup():
    # One shared pool serves the whole module (workers and their warm
    # caches are reused across tests, like a real bench session).
    yield
    parallel.shutdown_pool()


@pytest.fixture
def no_env(monkeypatch):
    for var in (JOBS_ENV, NO_PARALLEL_ENV, WORKER_ENV):
        monkeypatch.delenv(var, raising=False)
    # Pin the auto-serial projection off and forget cost history: tests
    # below assert *pool* behavior with deliberately tiny cells, which
    # the projection would rightly route to serial.
    monkeypatch.setenv(AUTO_ENV, "0")
    saved = dict(parallel_engine._cell_cost)
    parallel_engine._cell_cost.clear()
    yield
    parallel_engine._cell_cost.clear()
    parallel_engine._cell_cost.update(saved)


# -- job resolution ---------------------------------------------------------------

def test_resolve_jobs_precedence(no_env, monkeypatch):
    assert parallel.resolve_jobs() == 1
    monkeypatch.setenv(JOBS_ENV, "3")
    assert parallel.resolve_jobs() == 3
    parallel.set_default_jobs(2)
    try:
        assert parallel.resolve_jobs() == 2     # CLI default beats env
        assert parallel.resolve_jobs(5) == 5    # explicit beats both
    finally:
        parallel.set_default_jobs(None)
    monkeypatch.setenv(JOBS_ENV, "banana")
    assert parallel.resolve_jobs() == 1


# -- merge order ------------------------------------------------------------------

def test_serial_results_keep_declared_order(no_env):
    cells = [Cell("t", (i,), {"value": i * 10}) for i in range(5)]
    results = parallel.run_cells(echo_cell, cells, jobs=1)
    assert results == [("ran", (i,), i * 10) for i in range(5)]
    stats = parallel.last_run_stats()
    assert stats.mode == "serial"
    assert len(stats.cell_wall_s) == 5


def test_pool_merge_is_declared_order_not_completion_order(no_env):
    n = 4
    cells = [Cell("t", (i,), {"sleep_s": (n - i) * 0.15}) for i in range(n)]
    results = parallel.run_cells(sleepy_cell, cells, jobs=n)
    assert results == [(i,) for i in range(n)]
    stats = parallel.last_run_stats()
    assert stats.mode == "pool"
    assert stats.n_cells == n
    assert stats.workers_used >= 2


# -- failure surfacing ------------------------------------------------------------

@pytest.mark.parametrize("jobs", [1, 2])
def test_failed_cell_raises_with_its_key(no_env, jobs):
    cells = [Cell("exp", ("ok",)),
             Cell("exp", ("bad", "cell"), {"boom": True}),
             Cell("exp", ("later",))]
    with pytest.raises(CellError) as err:
        parallel.run_cells(boom_cell, cells, jobs=jobs)
    assert "exp[bad, cell]" in str(err.value)
    assert err.value.cell.key == ("bad", "cell")


def test_dead_worker_surfaces_instead_of_hanging(no_env):
    cells = [Cell("exp", ("victim",), {"die": True}),
             Cell("exp", ("bystander",))]
    with pytest.raises(CellError) as err:
        parallel.run_cells(die_cell, cells, jobs=2)
    assert "exp[" in str(err.value)
    # The broken pool was dropped: the next run gets a fresh one and works.
    results = parallel.run_cells(echo_cell, [Cell("exp", ("again",))] * 2,
                                 jobs=2)
    assert results == [("ran", ("again",), None)] * 2


def test_image_ids_unique_across_pool_workers(no_env):
    """PR-6 regression: `CheckpointImage.id` came from a process-global
    counter, so images minted in different pool workers collided when
    merged into one catalog/world.  Ids are now pid-qualified."""
    cells = [Cell("img", (i,), {"sleep_s": 0.3}) for i in range(2)]
    results = parallel.run_cells(image_id_cell, cells, jobs=2)
    stats = parallel.last_run_stats()
    assert stats.mode == "pool"
    assert stats.workers_used >= 2
    (pid_a, ids_a), (pid_b, ids_b) = results
    assert pid_a != pid_b  # two distinct workers really minted these
    merged = ids_a + ids_b
    assert len(set(merged)) == len(merged)


# -- fallbacks --------------------------------------------------------------------

def test_no_parallel_env_forces_serial(no_env, monkeypatch):
    monkeypatch.setenv(NO_PARALLEL_ENV, "1")
    cells = [Cell("t", (i,)) for i in range(3)]
    results = parallel.run_cells(echo_cell, cells, jobs=4)
    assert [r[1] for r in results] == [(0,), (1,), (2,)]
    stats = parallel.last_run_stats()
    assert stats.mode == "serial"
    assert stats.fallback_reason == "env"


def test_unpicklable_runner_falls_back_to_serial(no_env):
    captured = []

    def local_runner(cell):  # closures don't pickle
        captured.append(cell.key)
        return cell.key

    cells = [Cell("t", (i,)) for i in range(3)]
    results = parallel.run_cells(local_runner, cells, jobs=4)
    assert results == [(0,), (1,), (2,)]
    assert captured == [(0,), (1,), (2,)]
    assert parallel.last_run_stats().fallback_reason == "pickle"


def test_worker_processes_never_nest_pools(no_env, monkeypatch):
    monkeypatch.setenv(WORKER_ENV, "1")
    results = parallel.run_cells(echo_cell, [Cell("t", (i,)) for i in range(2)],
                                 jobs=4)
    assert len(results) == 2
    assert parallel.last_run_stats().fallback_reason == "nested"


def test_serial_only_flag_pins_observed_runs(no_env):
    results = parallel.run_cells(echo_cell, [Cell("t", (i,)) for i in range(2)],
                                 jobs=4, serial_only=True)
    assert len(results) == 2
    assert parallel.last_run_stats().fallback_reason == "serial-only"


# -- auto-serial projection -------------------------------------------------------

def test_auto_serial_skips_pool_for_tiny_cells(no_env, monkeypatch):
    """With history saying cells are dispatch-cost-sized, the projection
    keeps the run serial even though jobs and cell count allow a pool."""
    monkeypatch.setenv(AUTO_ENV, "1")
    parallel_engine._cell_cost["t"] = 1e-4  # far below DISPATCH_COST_S
    results = parallel.run_cells(echo_cell, [Cell("t", (i,)) for i in range(4)],
                                 jobs=4)
    assert [r[1] for r in results] == [(i,) for i in range(4)]
    stats = parallel.last_run_stats()
    assert stats.mode == "serial"
    assert stats.fallback_reason == "auto"


def test_auto_serial_lets_big_cells_use_the_pool(no_env, monkeypatch):
    """History of heavy cells projects a pool win → no fallback."""
    monkeypatch.setenv(AUTO_ENV, "1")
    monkeypatch.setattr(parallel_engine, "effective_cpu_count", lambda: 8)
    parallel_engine._cell_cost["t"] = 30.0  # pretend cells take 30s each
    results = parallel.run_cells(echo_cell, [Cell("t", (i,)) for i in range(4)],
                                 jobs=4)
    assert len(results) == 4
    assert parallel.last_run_stats().mode == "pool"


def test_auto_serial_first_run_has_no_history(no_env, monkeypatch):
    monkeypatch.setenv(AUTO_ENV, "1")
    results = parallel.run_cells(echo_cell, [Cell("t", (i,)) for i in range(4)],
                                 jobs=2)
    assert len(results) == 4
    assert parallel.last_run_stats().mode == "pool"  # optimistic first try
    # ... and the run itself seeded the history for next time.
    assert "t" in parallel_engine._cell_cost


def test_every_run_updates_cost_history(no_env):
    parallel.run_cells(echo_cell, [Cell("hist", (i,)) for i in range(3)],
                       jobs=1)
    first = parallel_engine._cell_cost["hist"]
    assert first >= 0.0
    parallel.run_cells(echo_cell, [Cell("hist", (i,)) for i in range(3)],
                       jobs=1)
    assert "hist" in parallel_engine._cell_cost  # EWMA folded, not replaced


# -- batched dispatch -------------------------------------------------------------

def test_pool_batches_cells_into_chunks(no_env):
    n = 16
    cells = [Cell("t", (i,), {"value": i}) for i in range(n)]
    results = parallel.run_cells(echo_cell, cells, jobs=2)
    assert results == [("ran", (i,), i) for i in range(n)]
    stats = parallel.last_run_stats()
    assert stats.mode == "pool"
    # 16 cells / (2 workers * 4 chunks-per-worker) = 2 cells per chunk.
    assert stats.n_chunks == 8
    assert len(stats.cell_wall_s) == n
    assert stats.result_bytes > 0


def test_batched_failure_names_exact_cell(no_env):
    # The failing cell sits mid-chunk; the error must name it, not the
    # chunk head, and must be the earliest-declared failure.
    cells = ([Cell("exp", ("ok", i)) for i in range(5)]
             + [Cell("exp", ("bad", "cell"), {"boom": True})]
             + [Cell("exp", ("later", i)) for i in range(5)])
    with pytest.raises(CellError) as err:
        parallel.run_cells(boom_cell, cells, jobs=2)
    assert "exp[bad, cell]" in str(err.value)
    assert err.value.cell.key == ("bad", "cell")


def test_stats_report_real_and_effective_cpus(no_env):
    parallel.run_cells(echo_cell, [Cell("t", (i,)) for i in range(2)], jobs=1)
    stats = parallel.last_run_stats()
    assert stats.cpu_count == os.cpu_count()
    assert stats.effective_cpus == parallel_engine.effective_cpu_count()
    assert 1 <= stats.effective_cpus <= stats.cpu_count


# -- warm Program cache -----------------------------------------------------------

def test_program_cache_reuses_identical_binaries(monkeypatch):
    from repro.apps import base

    monkeypatch.setattr(base, "_program_cache", {})
    monkeypatch.setattr(base, "_program_cache_hits", 0)
    from repro.gpu.program import build_copy

    first = base._build_program(build_copy, "k0")
    again = base._build_program(build_copy, "k0")
    other = base._build_program(build_copy, "k1")
    assert again is first
    assert other is not first
    assert base.program_cache_hits() == 1


def test_program_cache_off_by_default(monkeypatch):
    from repro.apps import base

    monkeypatch.setattr(base, "_program_cache", None)
    from repro.gpu.program import build_copy

    assert base._build_program(build_copy, "k0") \
        is not base._build_program(build_copy, "k0")


# -- figure golden bit-identity ---------------------------------------------------

def _golden(name: str) -> str:
    return (GOLDENS / f"{name}.txt").read_text().rstrip("\n")


@pytest.mark.parametrize("jobs", [1, 4])
def test_fig11_reduced_bit_identical_across_jobs(no_env, jobs):
    from repro.experiments.fig11_stall import run

    got = run(checkpoint_apps=("resnet152-train",),
              restore_apps=("resnet152-infer",), jobs=jobs).format()
    assert got.rstrip("\n") == _golden("fig11_reduced")


@pytest.mark.parametrize("jobs", [1, 4])
@pytest.mark.parametrize("fig,module", [
    ("fig16", "repro.experiments.fig16_cow_breakdown"),
    ("fig17", "repro.experiments.fig17_recopy_breakdown"),
    ("fig18", "repro.experiments.fig18_restore_breakdown"),
])
def test_breakdown_figures_bit_identical_across_jobs(no_env, fig, module,
                                                     jobs):
    import importlib

    got = importlib.import_module(module).run(jobs=jobs).format()
    assert got.rstrip("\n") == _golden(fig)
