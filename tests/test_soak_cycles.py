"""Soak tests: repeated C/R cycles and checkpoint-during-restore."""

from repro.api.runtime import GpuProcess
from repro.cluster import Machine
from repro.core.daemon import Phos
from repro.core.quiesce import quiesce
from repro.gpu.context import GpuContext
from repro.sim import Engine
from repro.units import MIB

from tests.toyapp import ToyApp, image_gpu_state, snapshot_process


def make_world(buf_size=4096):
    eng = Engine()
    machine = Machine(eng, n_gpus=1)
    phos = Phos(eng, machine, use_context_pool=False)
    process = GpuProcess(eng, machine, name="app", gpu_indices=[0], cpu_pages=8)
    process.runtime.adopt_context(0, GpuContext(gpu_index=0))
    phos.attach(process)
    return eng, machine, phos, process


def test_many_checkpoint_cycles_stay_correct():
    """12 alternating CoW/recopy checkpoints of a continuously-running
    app, each validated against a quiesced reference snapshot."""
    eng, machine, phos, process = make_world()
    app = ToyApp(process)

    def driver(eng):
        yield from app.setup()
        for cycle in range(12):
            yield from app.run(1, start=cycle)
            mode = "cow" if cycle % 2 == 0 else "recopy"
            yield from quiesce(eng, [process])
            expected, _ = snapshot_process(process)
            image, session = yield phos.checkpoint(process, mode=mode)
            assert not session.aborted, cycle
            if mode == "cow":
                assert image_gpu_state(image) == expected, (cycle, mode)
        return True

    assert eng.run_process(driver(eng))
    eng.run()
    # No leaked shadows or deferred frees across all cycles.
    gpu = machine.gpu(0)
    assert len(gpu.memory) == len(process.runtime.allocations[0])


def test_checkpoint_during_restore_waits_for_completion():
    """A checkpoint requested while the process is still restoring must
    not capture unloaded buffers — it waits for restore completion."""
    eng, machine, phos, process = make_world(buf_size=256 * MIB)
    app = ToyApp(process, buf_size=256 * MIB, kernel_flops=1e9)

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        image, _ = yield phos.checkpoint(process, mode="cow")
        machine2 = Machine(eng, name="m2", n_gpus=1)
        phos2 = Phos(eng, machine2, use_context_pool=False)
        result = yield from phos2.restore(
            image, gpu_indices=[0], machine=machine2, concurrent=True
        )
        process2, frontend2, session = result
        assert not session.all_restored()
        # Immediately checkpoint the still-restoring process.
        image2, session2 = yield phos2.checkpoint(process2, mode="cow")
        assert not session2.aborted
        return image, image2

    image, image2 = eng.run_process(driver(eng))
    eng.run()
    # The second image matches the first: no stale zero-buffers leaked.
    assert image_gpu_state(image2) == image_gpu_state(image)


def test_restore_chain_three_generations():
    """checkpoint -> restore -> run -> checkpoint -> restore -> run."""
    eng, machine, phos, process = make_world()
    app = ToyApp(process)

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        image, _ = yield phos.checkpoint(process, mode="cow")
        for gen in range(2):
            m = Machine(eng, name=f"gen{gen}", n_gpus=1)
            p = Phos(eng, m, use_context_pool=False)
            result = yield from p.restore(image, gpu_indices=[0], machine=m)
            proc, _, session = result
            yield session.done
            app.bind_restored(proc)
            yield from app.run(2, start=2 + 2 * gen)
            image, s = yield p.checkpoint(proc, mode="cow")
            assert not s.aborted
        return image

    image = eng.run_process(driver(eng))
    eng.run()
    assert image.finalized
    assert image.buffer_count(0) == 6
