"""Unit tests for argument-based speculation against the buffer table."""

import pytest

from repro.api.calls import ApiCall, ApiCategory
from repro.core.signatures import SignatureCache
from repro.core.speculation import speculate_call
from repro.core.tracker import BufferTable
from repro.errors import CheckpointError
from repro.gpu.interpreter import AccessKind, run_kernel
from repro.gpu.memory import DeviceMemory
from repro.gpu.program import (
    build_copy,
    build_fill,
    build_gather,
    build_global_writer,
    build_saxpy,
    build_scatter,
    build_struct_kernel,
)
from repro.units import MIB


@pytest.fixture
def mem():
    return DeviceMemory(capacity=64 * MIB, default_data_size=512)


@pytest.fixture
def table(mem):
    return BufferTable(gpu_index=0)


@pytest.fixture
def sigs():
    return SignatureCache()


def alloc(mem, table, size=512, tag=""):
    buf = mem.alloc(size, tag=tag)
    table.register(buf)
    return buf


def opaque(program, args, n_threads=4):
    return ApiCall(
        ApiCategory.OPAQUE_KERNEL, program.name, 0,
        program=program, args=args, n_threads=n_threads,
    )


# --- buffer table -----------------------------------------------------------


def test_table_resolve(mem, table):
    a = alloc(mem, table)
    b = alloc(mem, table)
    assert table.resolve(a.addr + 8) is a
    assert table.resolve(b.addr) is b
    assert table.resolve(b.end) is None


def test_table_double_register_rejected(mem, table):
    a = alloc(mem, table)
    with pytest.raises(CheckpointError):
        table.register(a)


def test_table_unregister(mem, table):
    a = alloc(mem, table)
    table.unregister(a)
    assert table.resolve(a.addr) is None
    with pytest.raises(CheckpointError):
        table.unregister(a)


def test_table_total_bytes(mem, table):
    alloc(mem, table, 512)
    alloc(mem, table, 512)
    assert table.total_bytes() == 1024


def test_table_total_bytes_tracks_unregister(mem, table):
    # The total is a running counter (O(1) on the checkpoint hot path):
    # it must stay exact through register/unregister churn.
    a = alloc(mem, table, 512)
    b = alloc(mem, table, 256)
    table.unregister(a)
    assert table.total_bytes() == 256
    table.register(a)
    assert table.total_bytes() == 768
    table.unregister(a)
    table.unregister(b)
    assert table.total_bytes() == 0


# --- declared semantics (types 1-3) -----------------------------------------


def test_memcpy_uses_declared_sets(mem, table, sigs):
    dst = alloc(mem, table)
    call = ApiCall(ApiCategory.MEMCPY_H2D, "cudaMemcpyH2D", 0, writes=[dst], nbytes=512)
    sets = speculate_call(call, table, sigs)
    assert sets.writes == [dst]
    assert not sets.opaque


def test_lib_compute_uses_declared_sets(mem, table, sigs):
    a, b, c = (alloc(mem, table) for _ in range(3))
    call = ApiCall(ApiCategory.LIB_COMPUTE, "cublasSgemm", 0, reads=[a, b], writes=[c])
    sets = speculate_call(call, table, sigs)
    assert sets.reads == [a, b] and sets.writes == [c]


# --- opaque kernels ----------------------------------------------------------


def test_saxpy_speculation(mem, table, sigs):
    x, y, z = (alloc(mem, table) for _ in range(3))
    prog = build_saxpy()
    sets = speculate_call(opaque(prog, [2, x.addr, y.addr, z.addr, 4]), table, sigs)
    assert sets.opaque and not sets.conservative
    assert [b.id for b in sets.writes] == [z.id]
    assert {b.id for b in sets.reads} == {x.id, y.id}


def test_scalar_that_collides_with_address_is_filtered(mem, table, sigs):
    """A scalar argument whose value happens to look like a buffer address
    must NOT be speculated as a write — the signature filter removes it."""
    x, y = alloc(mem, table), alloc(mem, table)
    prog = build_saxpy()
    # Pass y.addr as the scalar `a`: still only z (= x here) is written.
    sets = speculate_call(opaque(prog, [y.addr, x.addr, y.addr, x.addr, 4]), table, sigs)
    assert [b.id for b in sets.writes] == [x.id]


def test_pointer_into_buffer_interior_resolves(mem, table, sigs):
    y = alloc(mem, table)
    prog = build_fill()
    sets = speculate_call(opaque(prog, [y.addr + 64, 4, 0]), table, sigs)
    assert [b.id for b in sets.writes] == [y.id]


def test_unresolvable_pointer_ignored(mem, table, sigs):
    prog = build_fill()
    sets = speculate_call(opaque(prog, [0xDEAD0000, 4, 0]), table, sigs)
    assert sets.writes == []


def test_struct_kernel_conservative(mem, table, sigs):
    out = alloc(mem, table)
    prog = build_struct_kernel()
    sets = speculate_call(opaque(prog, [out.addr, 4, 7]), table, sigs)
    assert sets.conservative
    # The pointer chunk is found; scalar chunks that don't resolve are skipped.
    assert [b.id for b in sets.writes] == [out.id]
    assert [b.id for b in sets.reads] == [out.id]


def test_arg_count_mismatch_falls_back_conservative(mem, table, sigs):
    y = alloc(mem, table)
    prog = build_fill()  # decl has 3 params
    sets = speculate_call(opaque(prog, [y.addr, 4, 0, y.addr]), table, sigs)
    assert sets.conservative


def test_global_pointer_kernel_misses_hidden_buffer(mem, table, sigs):
    """The §8.5 Rodinia failure: the hidden buffer is not speculated."""
    x = alloc(mem, table)
    hidden = alloc(mem, table)
    prog = build_global_writer("gw", "out", hidden.addr)
    sets = speculate_call(opaque(prog, [x.addr, 4]), table, sigs)
    assert all(b.id != hidden.id for b in sets.writes)
    assert all(b.id != hidden.id for b in sets.reads)


# --- the safety property: speculation ⊇ actual accesses ----------------------


@pytest.mark.parametrize(
    "builder,arg_names",
    [
        (build_copy, ("x", "y", "n")),
        (build_saxpy, ("a", "x", "y", "z", "n")),
        (build_gather, ("x", "idx", "y", "n")),
        (build_scatter, ("x", "idx", "y", "n")),
    ],
)
def test_speculated_writes_cover_actual_writes(mem, table, sigs, builder, arg_names):
    bufs = {name: alloc(mem, table, tag=name) for name in arg_names if name not in ("a", "n")}
    # idx buffers must hold in-range indices.
    if "idx" in bufs:
        for i in range(4):
            bufs["idx"].store_word(bufs["idx"].addr + 8 * i, 3 - i)
    args = []
    for name in arg_names:
        if name == "a":
            args.append(2)
        elif name == "n":
            args.append(4)
        else:
            args.append(bufs[name].addr)
    prog = builder()
    sets = speculate_call(opaque(prog, args), table, sigs)
    run = run_kernel(prog, args, n_threads=4, memory=mem, detailed=True)
    write_ranges = sets.write_ranges()
    for addr in run.written_addrs():
        assert addr in write_ranges, f"{prog.name}: write at {addr:#x} not speculated"
    read_ranges = sets.read_ranges()
    for rec in run.accesses:
        if rec.kind is AccessKind.READ:
            assert rec.addr in read_ranges or rec.addr in write_ranges
