"""Unit tests for the kernel signature parser."""

import pytest

from repro.core.signatures import (
    ParamKind,
    Signature,
    SignatureCache,
    parse_signature,
)
from repro.errors import SignatureError


def kinds(decl):
    return [p.kind for p in parse_signature(decl).params]


def test_simple_kernel():
    sig = parse_signature("__global__ void saxpy(long a, const long* x, long* y, long n)")
    assert sig.kernel_name == "saxpy"
    assert kinds("__global__ void saxpy(long a, const long* x, long* y, long n)") == [
        ParamKind.SCALAR,
        ParamKind.CONST_PTR,
        ParamKind.MUT_PTR,
        ParamKind.SCALAR,
    ]


def test_no_global_qualifier():
    sig = parse_signature("void f(int n)")
    assert sig.kernel_name == "f"
    assert sig.params[0].kind is ParamKind.SCALAR


def test_empty_and_void_params():
    assert len(parse_signature("void f()")) == 0
    assert len(parse_signature("void f(void)")) == 0


def test_unnamed_params():
    assert kinds("void f(const float*, float*, int)") == [
        ParamKind.CONST_PTR,
        ParamKind.MUT_PTR,
        ParamKind.SCALAR,
    ]


def test_const_after_type():
    # `float const*` is a pointer-to-const: read-only.
    assert kinds("void f(float const* x)") == [ParamKind.CONST_PTR]


def test_const_pointer_itself_is_mutable_pointee():
    # `float* const p` can still write through p.
    assert kinds("void f(float* const p)") == [ParamKind.MUT_PTR]


def test_double_pointer_is_mutable():
    assert kinds("void f(float** pp)") == [ParamKind.MUT_PTR]


def test_const_double_pointer():
    assert kinds("void f(const float** pp)") == [ParamKind.CONST_PTR]


def test_struct_param_is_opaque():
    sig = parse_signature("void k(struct Params p, int n)")
    assert sig.params[0].kind is ParamKind.STRUCT
    assert sig.has_struct


def test_struct_pointer_is_pointer_not_struct():
    assert kinds("void k(struct Params* p)") == [ParamKind.MUT_PTR]
    assert kinds("void k(const struct Params* p)") == [ParamKind.CONST_PTR]


def test_unsigned_types():
    assert kinds("void f(unsigned long long n, unsigned char* out)") == [
        ParamKind.SCALAR,
        ParamKind.MUT_PTR,
    ]


def test_param_names_extracted():
    sig = parse_signature("void f(const float* input, float* output)")
    assert sig.params[0].name == "input"
    assert sig.params[1].name == "output"


def test_garbage_rejected():
    with pytest.raises(SignatureError):
        parse_signature("not a declaration at all!")


def test_trailing_semicolon_ok():
    sig = parse_signature("__global__ void k(int* p);")
    assert sig.kernel_name == "k"


def test_cache_parses_once():
    cache = SignatureCache()
    s1 = cache.get("k", "void k(int* p)")
    s2 = cache.get("k", "void k(int* p)")
    assert s1 is s2
    assert len(cache) == 1


def test_real_kernel_decl_from_program_library():
    from repro.gpu.program import build_saxpy

    prog = build_saxpy()
    sig = parse_signature(prog.decl)
    assert sig.kernel_name == "saxpy"
    assert [p.kind for p in sig.params] == [
        ParamKind.SCALAR,
        ParamKind.CONST_PTR,
        ParamKind.CONST_PTR,
        ParamKind.MUT_PTR,
        ParamKind.SCALAR,
    ]
