"""Integration tests for the downstream task drivers (§7)."""

import math

import pytest

from repro.tasks.fault_tolerance import (
    measure_checkpoint_overhead,
    measure_restore_time,
    wasted_fraction,
)
from repro.tasks.live_migration import migrate
from repro.tasks.serverless import cold_start


# --- fault tolerance -----------------------------------------------------------


@pytest.fixture(scope="module")
def resnet_overheads():
    return {
        system: measure_checkpoint_overhead(system, "resnet152-train")
        for system in ("phos", "singularity", "cuda-checkpoint")
    }


def test_phos_checkpoint_stall_is_smallest(resnet_overheads):
    phos = resnet_overheads["phos"].checkpoint_stall
    sing = resnet_overheads["singularity"].checkpoint_stall
    cuda = resnet_overheads["cuda-checkpoint"].checkpoint_stall
    assert phos < sing < cuda


def test_singularity_stall_matches_copy_time(resnet_overheads):
    """Stop-the-world stall ~= (GPU + CPU data) / their copy bandwidths."""
    from repro.apps.base import CPU_PAGE_SIZE
    from repro.apps.specs import get_spec
    from repro.cpu.criu import CPU_COPY_BW, DUMP_THREADS
    from repro import units

    spec = get_spec("resnet152-train")
    stall = resnet_overheads["singularity"].checkpoint_stall
    gpu_s = spec.mem_per_gpu / units.PCIE_GEN4_MEASURED
    # CRIU dumps with multiple worker threads.
    cpu_s = spec.cpu_pages * CPU_PAGE_SIZE / (CPU_COPY_BW * DUMP_THREADS)
    assert stall == pytest.approx(gpu_s + cpu_s, rel=0.25)


def test_cuda_checkpoint_unsupported_for_multi_gpu():
    m = measure_checkpoint_overhead("cuda-checkpoint", "llama2-13b-train")
    assert not m.supported


def test_wasted_fraction_phos_less_than_singularity(resnet_overheads):
    waste = {}
    for system in ("phos", "singularity"):
        m = resnet_overheads[system]
        restore = measure_restore_time(system, "resnet152-train")
        waste[system], f_star = wasted_fraction(m, restore)
        assert f_star > 0
    assert waste["phos"] < waste["singularity"]


def test_phos_enables_higher_checkpoint_frequency(resnet_overheads):
    f = {}
    for system in ("phos", "singularity"):
        m = resnet_overheads[system]
        _, f[system] = wasted_fraction(m, restore_time=10.0)
    assert f["phos"] > f["singularity"]


# --- live migration -------------------------------------------------------------


@pytest.fixture(scope="module")
def resnet_migrations():
    return {
        system: migrate(system, "resnet152-train")
        for system in ("phos", "singularity")
    }


def test_migration_downtime_phos_smaller(resnet_migrations):
    assert (resnet_migrations["phos"].downtime
            < resnet_migrations["singularity"].downtime)


def test_migration_downtime_positive_and_bounded(resnet_migrations):
    for result in resnet_migrations.values():
        assert 0 < result.downtime <= result.total_time


def test_migration_cuda_checkpoint_unsupported_multi_gpu():
    result = migrate("cuda-checkpoint", "llama2-13b-train")
    assert not result.supported
    assert math.isnan(result.downtime)


def test_migration_clock_domains_matches_single(resnet_migrations):
    """Sharding source and target into clock domains changes the
    downtime only by the explicit control-message hops (microseconds
    against a downtime of tenths of a second)."""
    single = resnet_migrations["phos"]
    sharded = migrate("phos", "resnet152-train", clock_domains=True)
    assert sharded.supported
    assert sharded.downtime == pytest.approx(single.downtime, abs=1e-3)
    assert sharded.total_time == pytest.approx(single.total_time, abs=1e-3)


def test_migration_clock_domains_baselines_rejected():
    from repro.errors import InvalidValueError

    with pytest.raises(InvalidValueError):
        migrate("singularity", "resnet152-train", clock_domains=True)


# --- serverless ------------------------------------------------------------------


@pytest.fixture(scope="module")
def resnet_cold_starts():
    return {
        system: cold_start(system, "resnet152-infer", n_requests=4)
        for system in ("phos", "singularity", "cuda-checkpoint")
    }


def test_cold_start_ordering(resnet_cold_starts):
    phos = resnet_cold_starts["phos"].end_to_end
    sing = resnet_cold_starts["singularity"].end_to_end
    cuda = resnet_cold_starts["cuda-checkpoint"].end_to_end
    assert phos < sing < cuda


def test_cold_start_phos_beats_context_barrier(resnet_cold_starts):
    """Baselines pay the multi-second context barrier; PHOS does not."""
    assert resnet_cold_starts["phos"].end_to_end < 1.0
    assert resnet_cold_starts["singularity"].end_to_end > 2.0


def test_cold_start_rejects_training_apps():
    from repro.errors import InvalidValueError

    with pytest.raises(InvalidValueError):
        cold_start("phos", "resnet152-train")


def test_cold_start_rejects_non_positive_scalars():
    # Regression: n_requests=0 used to produce a zero-length serving
    # loop whose per-request latency divided by zero downstream.
    from repro.errors import InvalidValueError

    with pytest.raises(InvalidValueError):
        cold_start("phos", "resnet152-infer", n_requests=0)
    with pytest.raises(InvalidValueError):
        cold_start("phos", "resnet152-infer", n_requests=-3)
    with pytest.raises(InvalidValueError):
        cold_start("phos", "resnet152-infer", chunk_bytes=0)


def test_cold_start_unsupported_is_flagged_not_poisonous():
    # cuda-checkpoint cannot serve multi-GPU models: the result row is
    # explicitly unsupported and its NaN timings must be *excluded*
    # from aggregates (repro.stats raises on NaN rather than letting a
    # mean silently go NaN).
    from repro import stats
    from repro.errors import InvalidValueError

    res = cold_start("cuda-checkpoint", "llama3-70b-infer", n_requests=2)
    assert not res.supported
    assert math.isnan(res.end_to_end)
    with pytest.raises(InvalidValueError):
        stats.mean([1.0, res.end_to_end])
    assert stats.supported_samples([res], "end_to_end") == []
