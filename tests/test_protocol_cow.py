"""Integration tests: the soft copy-on-write checkpoint protocol.

The central claim of §4.2 is tested literally: the CoW image must be
byte-identical to the process state at the quiesce point t1, no matter
what the concurrently-running application does during the copy phase.
"""

from repro.api.runtime import GpuProcess
from repro.cluster import Machine
from repro.core.daemon import Phos
from repro.core.quiesce import quiesce, resume
from repro.gpu.context import GpuContext
from repro.gpu.cost_model import KernelCost
from repro.gpu.program import build_global_writer
from repro.sim import Engine
from repro.units import MIB

from tests.toyapp import ToyApp, image_gpu_state, snapshot_process


def make_world(n_gpus=1, cow_process_gpus=(0,)):
    eng = Engine()
    machine = Machine(eng, n_gpus=n_gpus)
    phos = Phos(eng, machine, use_context_pool=False)
    process = GpuProcess(eng, machine, name="app", gpu_indices=list(cow_process_gpus),
                         cpu_pages=8)
    for i in cow_process_gpus:
        process.runtime.adopt_context(i, GpuContext(gpu_index=i))
    phos.attach(process)
    return eng, machine, phos, process


def checkpoint_at_known_state(eng, phos, process, app, warm_iters, post_iters,
                              mode="cow", **ckpt_kwargs):
    """Run the app, quiesce, snapshot (the expected t1 state), then start
    the checkpoint while the app keeps running.  Returns
    (expected_gpu, expected_cpu, image, session)."""
    state = {}

    def driver(eng):
        yield from app.setup()
        yield from app.run(warm_iters)
        # Hold the process quiesced while we snapshot: the checkpoint's
        # own quiesce then captures exactly this state as t1.
        yield from quiesce(eng, [process])
        state["gpu"], state["cpu"] = snapshot_process(process)
        handle = phos.checkpoint(process, mode=mode, **ckpt_kwargs)
        # The protocol resumes the process; continue running meanwhile.
        yield from app.run(post_iters, start=warm_iters)
        image, session = yield handle
        return image, session

    image, session = eng.run_process(driver(eng))
    eng.run()
    return state["gpu"], state["cpu"], image, session


def test_cow_image_equals_t1_state():
    eng, machine, phos, process = make_world()
    app = ToyApp(process)
    exp_gpu, exp_cpu, image, session = checkpoint_at_known_state(
        eng, phos, process, app, warm_iters=3, post_iters=8
    )
    assert not session.aborted
    assert image.finalized
    got = image_gpu_state(image)
    assert set(got) == set(exp_gpu)
    for key in exp_gpu:
        assert got[key] == exp_gpu[key], f"buffer at {key} diverged from t1"
    # CPU pages too (CRIU CoW dump).
    for idx, data in enumerate(exp_cpu):
        assert image.cpu_pages[idx] == data
    # The app genuinely ran concurrently and wrote: live state differs.
    live_gpu, _ = snapshot_process(process)
    assert any(live_gpu[k] != exp_gpu[k] for k in exp_gpu)


def test_cow_triggers_shadow_copies():
    eng, machine, phos, process = make_world()
    # Large buffers: the copy window (~60 ms over PCIe) spans many fast
    # iterations, so concurrent writes hit not-yet-checkpointed buffers.
    app = ToyApp(process, buf_size=256 * MIB, kernel_flops=1e9)
    _, _, image, session = checkpoint_at_known_state(
        eng, phos, process, app, warm_iters=2, post_iters=10
    )
    assert not session.aborted
    assert session.stats.cow_shadow_copies > 0
    # Shadows were released afterwards.
    assert session.shadows == {}
    assert session.pool_free(0) == session.cow_pool_bytes


def test_cow_without_concurrent_writes_has_no_shadows():
    eng, machine, phos, process = make_world()
    app = ToyApp(process)
    _, _, image, session = checkpoint_at_known_state(
        eng, phos, process, app, warm_iters=2, post_iters=0
    )
    assert not session.aborted
    assert session.stats.cow_shadow_copies == 0
    assert session.stats.cow_stall_time == 0.0


def test_cow_image_includes_buffer_freed_during_window():
    """A buffer alive at t1 but freed during the copy must appear in the
    image with its t1 content (PHOS defers the physical free)."""
    eng, machine, phos, process = make_world()
    app = ToyApp(process)
    state = {}

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        doomed = app.bufs["out"]
        yield from quiesce(eng, [process])
        state["expected"] = doomed.snapshot()
        state["addr"] = doomed.addr
        handle = phos.checkpoint(process, mode="cow")
        # Free the buffer while the checkpoint is copying.
        yield from process.runtime.free(0, doomed)
        del app.bufs["out"]
        image, session = yield handle
        return image, session

    image, session = eng.run_process(driver(eng))
    assert not session.aborted
    records = image.gpu_buffers[0]
    by_addr = {r.addr: r for r in records.values()}
    assert by_addr[state["addr"]].data == state["expected"]
    # And the device memory was actually released afterwards.
    assert all(b.addr != state["addr"] for b in machine.gpu(0).memory.buffers())


def test_cow_excludes_buffers_allocated_after_t1():
    eng, machine, phos, process = make_world()
    app = ToyApp(process)

    def driver(eng):
        yield from app.setup()
        yield from quiesce(eng, [process])
        handle = phos.checkpoint(process, mode="cow")
        newbuf = yield from process.runtime.malloc(0, 1 * MIB, tag="late")
        yield from process.runtime.memcpy_h2d(0, newbuf, payload=9, sync=True)
        image, session = yield handle
        return image, session, newbuf

    image, session, newbuf = eng.run_process(driver(eng))
    assert not session.aborted
    addrs = {r.addr for r in image.gpu_buffers[0].values()}
    assert newbuf.addr not in addrs


def test_cow_mis_speculation_aborts_and_retries_stop_world():
    """A kernel writing through a module-global pointer defeats
    speculation; the validator catches it and PHOS falls back to a
    stop-the-world retry whose image is consistent."""
    eng, machine, phos, process = make_world()
    # Large buffers keep `out` (copied last) uncheckpointed long enough
    # for the sneaky kernel to hit it mid-copy.
    app = ToyApp(process, buf_size=256 * MIB, kernel_flops=1e9)

    def driver(eng):
        yield from app.setup()
        yield from app.run(1)
        hidden = app.bufs["out"]
        sneaky = build_global_writer("sneaky", "hidden_out", hidden.addr)
        yield from quiesce(eng, [process])
        handle = phos.checkpoint(process, mode="cow")
        # While the checkpoint runs, write `hidden` via the global ptr:
        # the argument list only shows a const read of `input`.
        yield from process.runtime.launch_kernel(
            0, sneaky, [app.bufs["input"].addr, 8], 8,
            cost=KernelCost(flops=1e9), sync=True,
        )
        image, session = yield handle
        return image, session

    image, session = eng.run_process(driver(eng))
    eng.run()
    assert session.aborted
    assert "mis-speculated" in session.abort_reason
    assert session.stats.violations_handled > 0
    # The fallback image reflects a consistent (post-write) state.
    assert image.finalized
    got = image_gpu_state(image)
    live_gpu, _ = snapshot_process(process)
    for key in got:
        assert got[key] == live_gpu[key]


def test_cow_pool_exhaustion_blocks_then_proceeds():
    """With a tiny CoW pool, concurrent writers block (K2 in Fig. 7)
    until shadow memory frees up — and the checkpoint stays correct."""
    eng, machine, phos, process = make_world()
    app = ToyApp(process, buf_size=128 * MIB, kernel_flops=1e9)
    exp_gpu, _, image, session = checkpoint_at_known_state(
        eng, phos, process, app, warm_iters=2, post_iters=10,
        cow_pool_bytes=128 * MIB,  # exactly one shadow at a time
    )
    assert not session.aborted
    got = image_gpu_state(image)
    for key in exp_gpu:
        assert got[key] == exp_gpu[key]
    assert session.stats.cow_pool_waits > 0


def test_cow_checkpoint_stall_much_smaller_than_stop_world():
    """The headline property: CoW keeps the app running."""

    def run_with(mode):
        eng, machine, phos, process = make_world()
        app = ToyApp(process, buf_size=64 * MIB, kernel_flops=2e12)

        def driver(eng):
            yield from app.setup()
            t0 = eng.now
            yield from app.run(3)
            baseline_iter = (eng.now - t0) / 3
            handle = phos.checkpoint(process, mode=mode)
            t1 = eng.now
            yield from app.run(6, start=3)
            elapsed = eng.now - t1
            yield handle
            return elapsed - 6 * baseline_iter  # extra time = stall

        stall = eng.run_process(driver(eng))
        eng.run()
        return stall

    cow_stall = run_with("cow")
    stop_stall = run_with("stop-world")
    assert cow_stall < stop_stall / 3


def test_multi_gpu_cow_checkpoint():
    eng, machine, phos, process = make_world(n_gpus=2, cow_process_gpus=(0, 1))
    apps = [ToyApp(process, gpu_index=0), ToyApp(process, gpu_index=1)]
    state = {}

    def driver(eng):
        for app in apps:
            yield from app.setup()
        for app in apps:
            yield from app.run(2)
        yield from quiesce(eng, [process])
        state["gpu"], _ = snapshot_process(process)
        handle = phos.checkpoint(process, mode="cow")
        for app in apps:
            yield from app.run(3, start=2)
        image, session = yield handle
        return image, session

    image, session = eng.run_process(driver(eng))
    assert not session.aborted
    got = image_gpu_state(image)
    assert set(got) == set(state["gpu"])
    for key in state["gpu"]:
        assert got[key] == state["gpu"][key]
    assert set(image.gpu_buffers) == {0, 1}
