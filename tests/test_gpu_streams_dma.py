"""Unit tests for streams, DMA engine arbitration, and the device."""

import pytest

from repro import units
from repro.gpu.dma import APP_PRIORITY, CHECKPOINT_PRIORITY, Direction, transfer
from repro.gpu.device import Gpu
from repro.sim import Engine


@pytest.fixture
def eng():
    return Engine()


@pytest.fixture
def gpu(eng):
    return Gpu(eng, index=0)


def timed_body(eng, log, name, duration):
    def body():
        yield eng.timeout(duration)
        log.append((name, eng.now))
        return name

    return body


def test_stream_runs_ops_in_order(eng, gpu):
    s = gpu.create_stream()
    log = []
    s.submit("a", timed_body(eng, log, "a", 2.0))
    s.submit("b", timed_body(eng, log, "b", 1.0))
    eng.run()
    assert log == [("a", 2.0), ("b", 3.0)]


def test_streams_run_concurrently(eng, gpu):
    s1, s2 = gpu.create_stream(), gpu.create_stream()
    log = []
    s1.submit("a", timed_body(eng, log, "a", 2.0))
    s2.submit("b", timed_body(eng, log, "b", 2.0))
    eng.run()
    assert dict(log) == {"a": 2.0, "b": 2.0}


def test_stream_synchronize_waits_for_prior_ops(eng, gpu):
    s = gpu.create_stream()
    log = []

    def proc(eng):
        s.submit("a", timed_body(eng, log, "a", 3.0))
        yield s.synchronize()
        return eng.now

    assert eng.run_process(proc(eng)) == 3.0


def test_synchronize_on_empty_stream_fires_immediately(eng, gpu):
    s = gpu.create_stream()

    def proc(eng):
        yield s.synchronize()
        return eng.now

    assert eng.run_process(proc(eng)) == 0.0


def test_op_done_carries_result(eng, gpu):
    s = gpu.create_stream()
    log = []

    def proc(eng):
        op = s.submit("a", timed_body(eng, log, "a", 1.0))
        got = yield op.done
        return got

    assert eng.run_process(proc(eng)) == "a"


def test_op_failure_propagates_to_waiters(eng, gpu):
    s = gpu.create_stream()

    def bad_body():
        yield eng.timeout(1.0)
        raise RuntimeError("kernel fault")

    def proc(eng):
        op = s.submit("bad", bad_body)
        try:
            yield op.done
        except RuntimeError as err:
            return str(err)

    assert eng.run_process(proc(eng)) == "kernel fault"


def test_op_failure_does_not_kill_stream(eng, gpu):
    s = gpu.create_stream()
    log = []

    def bad_body():
        yield eng.timeout(1.0)
        raise RuntimeError("boom")

    s.submit("bad", bad_body)
    s.submit("good", timed_body(eng, log, "good", 1.0))
    eng.run()
    assert log == [("good", 2.0)]


def test_pre_exec_runs_before_body(eng, gpu):
    s = gpu.create_stream()
    log = []

    def pre():
        yield eng.timeout(5.0)
        log.append(("pre", eng.now))

    s.submit("k", timed_body(eng, log, "k", 1.0), pre_exec=pre)
    eng.run()
    assert log == [("pre", 5.0), ("k", 6.0)]


def test_device_synchronize_drains_all_streams(eng, gpu):
    s1, s2 = gpu.create_stream(), gpu.create_stream()
    log = []
    s1.submit("a", timed_body(eng, log, "a", 2.0))
    s2.submit("b", timed_body(eng, log, "b", 4.0))

    def proc(eng):
        yield from gpu.synchronize()
        return eng.now

    assert eng.run_process(proc(eng)) == 4.0
    assert gpu.pending_ops == 0


# --- DMA ---------------------------------------------------------------------


def test_transfer_time_matches_bandwidth(eng, gpu):
    nbytes = 100 * units.MB

    def proc(eng):
        moved = yield from transfer(
            eng, gpu.dma, Direction.D2H, nbytes, bandwidth=units.GB
        )
        return (moved, eng.now)

    moved, t = eng.run_process(proc(eng))
    assert moved == nbytes
    assert t == pytest.approx(0.1)


def test_zero_byte_transfer_is_instant(eng, gpu):
    def proc(eng):
        moved = yield from transfer(eng, gpu.dma, Direction.H2D, 0, bandwidth=units.GB)
        return (moved, eng.now)

    assert eng.run_process(proc(eng)) == (0, 0.0)


def test_directions_share_the_engine_pool(eng, gpu):
    """§5: the transfer engines are shared, so opposite-direction
    transfers serialize on the single default engine."""
    done = {}

    def mover(eng, name, direction):
        yield from transfer(eng, gpu.dma, direction, units.GB, bandwidth=units.GB)
        done[name] = eng.now

    eng.spawn(mover(eng, "down", Direction.D2H))
    eng.spawn(mover(eng, "up", Direction.H2D))
    eng.run()
    assert sorted(done.values()) == [1.0, 2.0]


def test_same_direction_serializes(eng, gpu):
    done = {}

    def mover(eng, name):
        yield from transfer(eng, gpu.dma, Direction.D2H, units.GB, bandwidth=units.GB)
        done[name] = eng.now

    eng.spawn(mover(eng, "one"))
    eng.spawn(mover(eng, "two"))
    eng.run()
    assert sorted(done.values()) == [1.0, 2.0]


def test_unchunked_bulk_blocks_app_transfer(eng, gpu):
    """Without chunking, an app transfer waits behind the whole bulk copy."""
    done = {}

    def bulk(eng):
        yield from transfer(
            eng, gpu.dma, Direction.D2H, 10 * units.GB,
            bandwidth=units.GB, priority=CHECKPOINT_PRIORITY,
        )
        done["bulk"] = eng.now

    def app(eng):
        yield eng.timeout(1.0)  # arrives mid-bulk
        yield from transfer(
            eng, gpu.dma, Direction.D2H, units.GB,
            bandwidth=units.GB, priority=APP_PRIORITY,
        )
        done["app"] = eng.now

    eng.spawn(bulk(eng))
    eng.spawn(app(eng))
    eng.run()
    assert done["app"] == pytest.approx(11.0)  # waited for all 10 GB


def test_chunked_bulk_lets_app_preempt(eng, gpu):
    """With 4 MB chunks, the app transfer preempts at a chunk boundary."""
    done = {}

    def bulk(eng):
        yield from transfer(
            eng, gpu.dma, Direction.D2H, 10 * units.GB,
            bandwidth=units.GB, priority=CHECKPOINT_PRIORITY,
            chunk_bytes=units.CHECKPOINT_CHUNK,
        )
        done["bulk"] = eng.now

    def app(eng):
        yield eng.timeout(1.0)
        yield from transfer(
            eng, gpu.dma, Direction.D2H, units.GB,
            bandwidth=units.GB, priority=APP_PRIORITY,
        )
        done["app"] = eng.now

    eng.spawn(bulk(eng))
    eng.spawn(app(eng))
    eng.run()
    # The app waits at most one chunk (~4 ms at 1 GB/s) then transfers 1 s.
    assert done["app"] == pytest.approx(2.0, abs=0.05)
    # Bulk finishes after its 10 s of work plus the 1 s preemption.
    assert done["bulk"] == pytest.approx(11.0, abs=0.05)


def test_app_transfer_pending_ignores_checkpoint_traffic(eng, gpu):
    """Regression: a queued checkpoint-priority transfer used to flip
    app_transfer_pending to True (it checked queue_len unfiltered), so
    the prioritized copier yielded the engine to its own queued chunks."""
    snapshots = []

    def holder(eng):
        req = yield gpu.dma.d2h.acquire(priority=CHECKPOINT_PRIORITY)
        yield eng.timeout(2.0)
        gpu.dma.d2h.release(req)

    def queued_bulk(eng):
        yield eng.timeout(0.5)
        yield from transfer(
            eng, gpu.dma, Direction.D2H, units.GB, bandwidth=units.GB,
            priority=CHECKPOINT_PRIORITY,
        )

    def observer(eng):
        yield eng.timeout(1.0)  # bulk transfer now queued behind holder
        snapshots.append(gpu.dma.app_transfer_pending(Direction.D2H))

    eng.spawn(holder(eng))
    eng.spawn(queued_bulk(eng))
    eng.spawn(observer(eng))
    eng.run()
    assert snapshots == [False]


def test_app_transfer_pending_sees_running_app_transfer(eng, gpu):
    """An *ongoing* app transfer counts too ("ongoing or pending")."""
    snapshots = []

    def app(eng):
        yield from transfer(
            eng, gpu.dma, Direction.D2H, units.GB, bandwidth=units.GB,
            priority=APP_PRIORITY,
        )

    def observer(eng):
        yield eng.timeout(0.5)  # mid-transfer: app holds the engine
        snapshots.append(gpu.dma.app_transfer_pending(Direction.D2H))

    eng.spawn(app(eng))
    eng.spawn(observer(eng))
    eng.run()
    assert snapshots == [True]


def test_transfer_reports_bytes_when_observed(eng, gpu):
    """With an observer installed, transfers count bytes per priority."""
    from repro import obs

    with obs.observed(eng) as observer:
        def proc(eng):
            yield from transfer(
                eng, gpu.dma, Direction.D2H, 8 * units.MB,
                bandwidth=units.GB, priority=CHECKPOINT_PRIORITY,
                chunk_bytes=4 * units.MB,
            )

        eng.run_process(proc(eng))
        counter = observer.metrics.get(
            f"dma/{gpu.dma.pool.name}/bytes",
            priority=CHECKPOINT_PRIORITY, cls="bulk", direction="d2h",
        )
        assert counter is not None and counter.value == 8 * units.MB


def test_app_transfer_pending_reflects_queue(eng, gpu):
    snapshots = []

    def holder(eng):
        req = yield gpu.dma.d2h.acquire(priority=CHECKPOINT_PRIORITY)
        yield eng.timeout(2.0)
        gpu.dma.d2h.release(req)

    def app(eng):
        yield eng.timeout(0.5)
        yield from transfer(
            eng, gpu.dma, Direction.D2H, units.GB, bandwidth=units.GB,
            priority=APP_PRIORITY,
        )

    def observer(eng):
        yield eng.timeout(0.0)
        snapshots.append(gpu.dma.app_transfer_pending(Direction.D2H))
        yield eng.timeout(1.0)
        snapshots.append(gpu.dma.app_transfer_pending(Direction.D2H))

    eng.spawn(holder(eng))
    eng.spawn(app(eng))
    eng.spawn(observer(eng))
    eng.run()
    assert snapshots == [False, True]
