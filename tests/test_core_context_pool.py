"""Unit tests for the GPU context pool (§6)."""

import pytest

from repro.cluster import Machine
from repro.core.context_pool import ContextPool
from repro.errors import ContextPoolError
from repro.gpu.context import ContextRequirements
from repro.gpu.cost_model import DEFAULT_CONTEXT_COSTS
from repro.sim import Engine


@pytest.fixture
def eng():
    return Engine()


@pytest.fixture
def machine(eng):
    return Machine(eng, n_gpus=2)


def boot_pool(eng, machine, **kwargs):
    pool = ContextPool(eng, machine, **kwargs)
    eng.run_process(pool.prefill())
    return pool


def test_prefill_creates_contexts_per_gpu(eng, machine):
    pool = boot_pool(eng, machine, contexts_per_gpu=2)
    assert pool.prefilled
    assert pool.available(0) == 2
    assert pool.available(1) == 2


def test_prefill_takes_boot_time(eng, machine):
    boot_pool(eng, machine, contexts_per_gpu=1)
    assert eng.now > 1.0  # context creation is seconds-scale


def test_acquire_hit_is_fast(eng, machine):
    pool = boot_pool(eng, machine, refill=False)
    reqs = ContextRequirements(n_modules=10, use_cublas=True, nccl_gpus=2)

    def driver(eng):
        t0 = eng.now
        ctx = yield from pool.acquire(0, reqs)
        return ctx, eng.now - t0

    ctx, elapsed = eng.run_process(driver(eng))
    assert ctx.pooled
    assert elapsed == pytest.approx(DEFAULT_CONTEXT_COSTS.pool_assignment)
    assert pool.hits == 1 and pool.misses == 0


def test_acquire_miss_pays_full_creation(eng, machine):
    pool = ContextPool(eng, machine, refill=False)  # never prefilled
    reqs = ContextRequirements(n_modules=5)

    def driver(eng):
        t0 = eng.now
        ctx = yield from pool.acquire(0, reqs)
        return ctx, eng.now - t0

    ctx, elapsed = eng.run_process(driver(eng))
    assert not ctx.pooled
    assert elapsed > 1.0
    assert pool.misses == 1


def test_incompatible_requirements_miss(eng, machine):
    pool = boot_pool(eng, machine, refill=False)
    # Pool contexts cover the machine's 2 GPUs; asking for a wider NCCL
    # scope cannot be served from the pool.
    reqs = ContextRequirements(n_modules=0, nccl_gpus=16)

    def driver(eng):
        ctx = yield from pool.acquire(0, reqs)
        return ctx

    ctx = eng.run_process(driver(eng))
    assert not ctx.pooled
    assert pool.misses == 1


def test_pool_refills_in_background(eng, machine):
    pool = boot_pool(eng, machine, contexts_per_gpu=1, refill=True)
    reqs = ContextRequirements(n_modules=0, nccl_gpus=2)

    def driver(eng):
        yield from pool.acquire(0, reqs)

    eng.run_process(driver(eng))
    assert pool.available(0) == 0
    eng.run()  # let the background refill complete
    assert pool.available(0) == 1


def test_exhausted_pool_misses_then_recovers(eng, machine):
    pool = boot_pool(eng, machine, contexts_per_gpu=1, refill=False)
    reqs = ContextRequirements(n_modules=0, nccl_gpus=2)

    def driver(eng):
        first = yield from pool.acquire(0, reqs)
        second = yield from pool.acquire(0, reqs)
        return first, second

    first, second = eng.run_process(driver(eng))
    assert first.pooled and not second.pooled


def test_unknown_gpu_rejected(eng, machine):
    pool = boot_pool(eng, machine)

    def driver(eng):
        yield from pool.acquire(7, ContextRequirements(n_modules=0))

    with pytest.raises(ContextPoolError):
        eng.run_process(driver(eng))


def test_communicator_split_from_group(eng, machine):
    pool = boot_pool(eng, machine)

    def driver(eng):
        t0 = eng.now
        comm = yield from pool.acquire_communicator([0, 1])
        return comm, eng.now - t0

    comm, elapsed = eng.run_process(driver(eng))
    assert comm.gpu_indices == [0, 1]
    # ncclCommSplit is much cheaper than a full init.
    assert elapsed == pytest.approx(DEFAULT_CONTEXT_COSTS.nccl_split)


def test_communicator_outside_group_pays_full_init(eng, machine):
    pool = boot_pool(eng, machine)

    def driver(eng):
        t0 = eng.now
        comm = yield from pool.acquire_communicator([0, 1, 2, 3])
        return comm, eng.now - t0

    comm, elapsed = eng.run_process(driver(eng))
    assert elapsed == pytest.approx(4 * DEFAULT_CONTEXT_COSTS.nccl_init_per_gpu)
