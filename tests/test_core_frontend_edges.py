"""Edge-case tests for the frontend: sessions, heat tracking, guards."""

import pytest

from repro.api.calls import ApiCall, ApiCategory
from repro.api.runtime import GpuProcess
from repro.cluster import Machine
from repro.core.frontend import IPC_OVERHEAD, PhosFrontend
from repro.core.session import BufState, CheckpointSession
from repro.errors import CheckpointError
from repro.gpu.context import GpuContext
from repro.gpu.program import build_fill
from repro.storage.image import CheckpointImage


@pytest.fixture
def world(eng):
    machine = Machine(eng, n_gpus=1)
    process = GpuProcess(eng, machine, name="p", gpu_indices=[0], cpu_pages=4)
    process.runtime.adopt_context(0, GpuContext(gpu_index=0))
    frontend = PhosFrontend(eng, process)
    process.runtime.interceptor = frontend
    return machine, process, frontend


def test_invalid_mode_rejected(eng):
    machine = Machine(eng, n_gpus=1)
    process = GpuProcess(eng, machine, name="p", gpu_indices=[0])
    with pytest.raises(CheckpointError, match="mode"):
        PhosFrontend(eng, process, mode="rpc")


def test_ipc_mode_adds_overhead(eng, world):
    machine, process, _ = world
    frontend = PhosFrontend(eng, process, mode="ipc")
    call = ApiCall(ApiCategory.OPAQUE_KERNEL, "k", 0,
                   program=build_fill(), args=[0, 0, 0], n_threads=1)
    plan = frontend.plan(call)
    assert plan.frontend_overhead == IPC_OVERHEAD


def test_double_begin_checkpoint_rejected(eng, world):
    _, _, frontend = world
    s1 = CheckpointSession(eng, "cow", CheckpointImage())
    frontend.begin_checkpoint(s1)
    s2 = CheckpointSession(eng, "cow", CheckpointImage())
    with pytest.raises(CheckpointError, match="already active"):
        frontend.begin_checkpoint(s2)
    frontend.end_checkpoint()
    with pytest.raises(CheckpointError, match="no checkpoint session"):
        frontend.end_checkpoint()


def test_bad_hot_order_rejected(eng, world):
    _, _, frontend = world
    with pytest.raises(CheckpointError, match="hot_order"):
        frontend.begin_checkpoint(
            CheckpointSession(eng, "cow", CheckpointImage()),
            hot_order="random",
        )


def test_end_restore_without_begin_rejected(eng, world):
    _, _, frontend = world
    with pytest.raises(CheckpointError, match="no restore session"):
        frontend.end_restore()


def test_predicted_next_write_tracks_period(eng, world):
    machine, process, frontend = world

    def app(rt):
        buf = yield from rt.malloc(0, 512, tag="b")
        # Two writes 1 s apart establish the period.
        yield from rt.memcpy_h2d(0, buf, payload=1, sync=True)
        yield eng.timeout(1.0 - (eng.now % 1.0))
        t_second = eng.now
        yield from rt.memcpy_h2d(0, buf, payload=2, sync=True)
        return buf, t_second

    buf, t_second = eng.run_process(app(process.runtime))
    predicted = frontend.predicted_next_write(buf)
    history = frontend.write_history[buf.id]
    assert predicted == pytest.approx(history[1] + (history[1] - history[0]))
    assert predicted > history[1]


def test_predicted_next_write_unwritten_is_inf(eng, world):
    machine, process, frontend = world

    def app(rt):
        buf = yield from rt.malloc(0, 512)
        return buf

    buf = eng.run_process(app(process.runtime))
    assert frontend.predicted_next_write(buf) == float("inf")


def test_single_write_is_inf(eng, world):
    machine, process, frontend = world

    def app(rt):
        buf = yield from rt.malloc(0, 512)
        yield from rt.memcpy_h2d(0, buf, payload=1, sync=True)
        return buf

    buf = eng.run_process(app(process.runtime))
    assert frontend.predicted_next_write(buf) == float("inf")


def test_hot_first_plan_orders_by_prediction(eng, world):
    machine, process, frontend = world

    def app(rt):
        cold = yield from rt.malloc(0, 512, tag="cold")
        hot = yield from rt.malloc(0, 512, tag="hot")
        slow = yield from rt.malloc(0, 512, tag="slow")
        # hot: written every ~1 ms; slow: every ~1 s; cold: never.
        for i in range(2):
            yield from rt.memcpy_h2d(0, hot, payload=i, sync=True)
            yield eng.timeout(1e-3)
        yield from rt.memcpy_h2d(0, slow, payload=1, sync=True)
        yield eng.timeout(1.0)
        yield from rt.memcpy_h2d(0, slow, payload=2, sync=True)
        return cold, hot, slow

    cold, hot, slow = eng.run_process(app(process.runtime))
    session = CheckpointSession(eng, "cow", CheckpointImage())
    frontend.begin_checkpoint(session, hot_order="hot-first")
    plan_tags = [b.tag for b in session.plan[0]]
    assert plan_tags.index("hot") < plan_tags.index("slow") < plan_tags.index("cold")
    frontend.end_checkpoint()


def test_on_free_outside_session_is_not_deferred(eng, world):
    machine, process, frontend = world

    def app(rt):
        buf = yield from rt.malloc(0, 512)
        yield from rt.free(0, buf)
        return buf

    buf = eng.run_process(app(process.runtime))
    assert buf.freed  # physically freed right away
    assert machine.gpu(0).memory.used == 0


def test_new_buffer_state_is_new_during_session(eng, world):
    machine, process, frontend = world

    def app(rt):
        old = yield from rt.malloc(0, 512, tag="old")
        session = CheckpointSession(eng, "cow", CheckpointImage())
        frontend.begin_checkpoint(session)
        new = yield from rt.malloc(0, 512, tag="new")
        states = (session.state_of(old), session.state_of(new))
        frontend.end_checkpoint()
        return states

    old_state, new_state = eng.run_process(app(process.runtime))
    assert old_state is BufState.NOT_STARTED
    assert new_state is BufState.NEW
