"""A small deterministic application used by protocol tests.

The app allocates a handful of buffers, initializes them over PCIe, and
runs an iteration loop that exercises every API category: opaque
kernels (scale, in-place add, scatter), a library kernel, host->device
input loading, and CPU work that dirties host pages.  Given the same
iteration count it always produces the same functional state, which is
what lets tests phrase checkpoint correctness as byte equality.
"""

from __future__ import annotations

from repro.gpu.cost_model import KernelCost
from repro.gpu.program import (
    build_inplace_add,
    build_scale,
    build_scatter,
)

N_WORDS = 16  # words touched per kernel (fits every buffer prefix)


class ToyApp:
    """Deterministic iteration loop over one GPU."""

    def __init__(self, process, gpu_index=0, buf_size=4096,
                 kernel_flops=5e9, cpu_ms=0.2):
        self.process = process
        self.rt = process.runtime
        self.gpu_index = gpu_index
        self.buf_size = buf_size
        self.cost = KernelCost(flops=kernel_flops, bytes_moved=buf_size,
                               memory_intensity=0.8)
        self.cpu_seconds = cpu_ms * 1e-3
        self.scale = build_scale(factor=3)
        self.inplace = build_inplace_add()
        self.scatter = build_scatter()
        self.bufs = {}
        self.iterations_done = 0

    def setup(self):
        """Generator: allocate and initialize all buffers."""
        names = ["input", "act", "weight", "grad", "idx", "out"]
        for name in names:
            self.bufs[name] = yield from self.rt.malloc(
                self.gpu_index, self.buf_size, tag=name
            )
        for i, name in enumerate(names):
            yield from self.rt.memcpy_h2d(
                self.gpu_index, self.bufs[name], payload=i + 1, sync=True
            )
        # idx holds a permutation for the scatter kernel.
        idx = self.bufs["idx"]
        for i in range(N_WORDS):
            idx.store_word(idx.addr + 8 * i, (i * 7 + 3) % N_WORDS)

    def one_iteration(self, i):
        """Generator: one deterministic iteration."""
        b = self.bufs
        yield from self.rt.cpu_work(
            self.cpu_seconds, write_pages=[i % self.process.host.memory.n_pages],
            value=i + 1,
        )
        yield from self.rt.memcpy_h2d(
            self.gpu_index, b["input"], payload=1000 + i
        )
        yield from self.rt.launch_kernel(
            self.gpu_index, self.scale,
            [b["input"].addr, b["act"].addr, N_WORDS], N_WORDS, cost=self.cost,
        )
        yield from self.rt.lib_compute(
            self.gpu_index, "gemm",
            reads=[b["act"], b["weight"]], writes=[b["grad"]],
            cost=self.cost, salt=i,
        )
        yield from self.rt.launch_kernel(
            self.gpu_index, self.scatter,
            [b["grad"].addr, b["idx"].addr, b["out"].addr, N_WORDS],
            N_WORDS, cost=self.cost,
        )
        yield from self.rt.launch_kernel(
            self.gpu_index, self.inplace,
            [b["weight"].addr, N_WORDS], N_WORDS, cost=self.cost,
        )
        yield from self.rt.device_synchronize(self.gpu_index)
        self.iterations_done = i + 1

    def run(self, n_iters, start=0):
        """Generator: run ``n_iters`` iterations."""
        for i in range(start, start + n_iters):
            yield from self.one_iteration(i)

    def bind_restored(self, process):
        """Continue on a restored process (buffers re-found by tag)."""
        self.process = process
        self.rt = process.runtime
        by_tag = {b.tag: b for b in process.runtime.allocations[self.gpu_index]}
        self.bufs = {name: by_tag[name] for name in self.bufs}


def snapshot_process(process):
    """Functional snapshot: {(gpu, addr): bytes} plus CPU pages."""
    gpu_state = {}
    for gpu_index, bufs in process.runtime.allocations.items():
        for buf in bufs:
            gpu_state[(gpu_index, buf.addr)] = buf.snapshot()
    cpu_state = process.host.memory.snapshot_all()
    return gpu_state, cpu_state


def image_gpu_state(image):
    """{(gpu, addr): bytes} from a checkpoint image (deltas walked)."""
    from repro.storage.delta import materialize

    image = materialize(image)
    out = {}
    for gpu_index, records in image.gpu_buffers.items():
        for record in records.values():
            out[(gpu_index, record.addr)] = record.data
    return out
