"""Logging behaviour and fuzz tests."""

import logging

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.runtime import GpuProcess
from repro.cluster import Machine
from repro.core.daemon import Phos
from repro.core.signatures import Signature, parse_signature
from repro.errors import SignatureError
from repro.gpu.context import GpuContext
from repro.sim import Engine

from tests.toyapp import ToyApp


def test_daemon_logs_checkpoint_lifecycle(caplog):
    eng = Engine()
    machine = Machine(eng, n_gpus=1)
    phos = Phos(eng, machine, use_context_pool=False)
    process = GpuProcess(eng, machine, name="app", gpu_indices=[0], cpu_pages=4)
    process.runtime.adopt_context(0, GpuContext(gpu_index=0))
    phos.attach(process)
    app = ToyApp(process)

    def driver(eng):
        yield from app.setup()
        yield from app.run(1)
        image, session = yield phos.checkpoint(process, mode="cow", name="log-me")
        return image

    with caplog.at_level(logging.INFO, logger="repro.phos"):
        eng.run_process(driver(eng))
        eng.run()
    messages = [r.getMessage() for r in caplog.records]
    assert any("checkpoint requested" in m and "app" in m for m in messages)
    assert any("checkpoint done" in m and "log-me" in m for m in messages)


def test_daemon_logs_restore_request(caplog):
    eng = Engine()
    machine = Machine(eng, n_gpus=1)
    phos = Phos(eng, machine, use_context_pool=False)
    process = GpuProcess(eng, machine, name="app", gpu_indices=[0], cpu_pages=4)
    process.runtime.adopt_context(0, GpuContext(gpu_index=0))
    phos.attach(process)
    app = ToyApp(process)

    def driver(eng):
        yield from app.setup()
        image, _ = yield phos.checkpoint(process, mode="cow")
        machine2 = Machine(eng, name="m2", n_gpus=1)
        phos2 = Phos(eng, machine2, use_context_pool=False)
        result = yield from phos2.restore(image, gpu_indices=[0],
                                          machine=machine2)
        yield result[2].done

    with caplog.at_level(logging.INFO, logger="repro.phos"):
        eng.run_process(driver(eng))
        eng.run()
    assert any("restore requested" in r.getMessage() for r in caplog.records)


# --- signature parser fuzz -----------------------------------------------------------


@given(st.text(alphabet=st.characters(codec="ascii"), max_size=120))
@settings(max_examples=200)
def test_parser_never_crashes_on_garbage(text):
    """Any input yields either a Signature or a SignatureError — never an
    unhandled exception (the frontend must survive weird declarations)."""
    try:
        sig = parse_signature(text)
    except SignatureError:
        return
    assert isinstance(sig, Signature)


@given(
    st.lists(
        st.sampled_from([
            "int", "long", "float", "double", "const float*", "float*",
            "unsigned long long", "struct Params", "const struct P*",
            "float* const", "int8_t*", "const void*",
        ]),
        min_size=0, max_size=8,
    )
)
@settings(max_examples=100)
def test_parser_handles_all_type_combinations(params):
    decl = f"__global__ void kern({', '.join(params)})"
    sig = parse_signature(decl)
    assert sig.kernel_name == "kern"
    assert len(sig) == len(params)
