"""Unit tests for the baseline systems (Singularity / cuda-checkpoint)."""

import pytest

from repro.api.runtime import GpuProcess
from repro.baselines.cuda_checkpoint import (
    cuda_checkpoint_checkpoint,
    cuda_checkpoint_restore,
)
from repro.baselines.singularity import singularity_checkpoint, singularity_restore
from repro.cluster import Machine
from repro.cpu.criu import CriuEngine
from repro.errors import CheckpointError
from repro.gpu.context import GpuContext
from repro.sim import Engine

from tests.toyapp import ToyApp, image_gpu_state, snapshot_process


def make_world(n_gpus=1):
    eng = Engine()
    machine = Machine(eng, n_gpus=n_gpus)
    criu = CriuEngine(eng)
    process = GpuProcess(eng, machine, name="app", gpu_indices=[0], cpu_pages=8)
    process.runtime.adopt_context(0, GpuContext(gpu_index=0))
    app = ToyApp(process)
    return eng, machine, criu, process, app


def test_singularity_checkpoint_is_consistent():
    eng, machine, criu, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        image = yield from singularity_checkpoint(
            eng, process, machine.dram, criu
        )
        # Quiesced for the whole copy: image == state at completion.
        expected, _ = snapshot_process(process)
        return image, expected

    image, expected = eng.run_process(driver(eng))
    assert image_gpu_state(image) == expected
    assert image.finalized


def test_singularity_roundtrip():
    eng, machine, criu, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        image = yield from singularity_checkpoint(
            eng, process, machine.dram, criu
        )
        target = Machine(eng, name="t", n_gpus=1)
        restored = yield from singularity_restore(
            eng, image, target, [0], machine.dram, criu
        )
        return image, restored

    image, restored = eng.run_process(driver(eng))
    got, _ = snapshot_process(restored)
    assert image_gpu_state(image) == got
    assert restored.registers if hasattr(restored, "registers") else True


def test_cuda_checkpoint_slower_than_singularity():
    from repro.units import MIB

    def timed(fn):
        eng, machine, criu, process, _ = make_world()
        app = ToyApp(process, buf_size=64 * MIB)  # data-path bound

        def driver(eng):
            yield from app.setup()
            yield from app.run(1)
            t0 = eng.now
            yield from fn(eng, process, machine.dram, criu)
            return eng.now - t0

        return eng.run_process(driver(eng))

    sing = timed(singularity_checkpoint)
    cuda = timed(cuda_checkpoint_checkpoint)
    assert cuda > 3 * sing  # orders-of-magnitude data-path gap


def test_cuda_checkpoint_rejects_multi_gpu():
    eng = Engine()
    machine = Machine(eng, n_gpus=2)
    criu = CriuEngine(eng)
    process = GpuProcess(eng, machine, name="multi", gpu_indices=[0, 1])

    def driver(eng):
        yield from cuda_checkpoint_checkpoint(eng, process, machine.dram, criu)

    with pytest.raises(CheckpointError, match="distributed"):
        eng.run_process(driver(eng))

    def driver2(eng):
        from repro.storage.image import CheckpointImage

        image = CheckpointImage()
        image.finalize(0.0)
        yield from cuda_checkpoint_restore(eng, image, machine, [0, 1],
                                           machine.dram, criu)

    with pytest.raises(CheckpointError, match="distributed"):
        eng.run_process(driver2(eng))


def test_restore_pays_context_creation():
    eng, machine, criu, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        image = yield from singularity_checkpoint(
            eng, process, machine.dram, criu
        )
        target = Machine(eng, name="t", n_gpus=1)
        t0 = eng.now
        yield from singularity_restore(eng, image, target, [0],
                                       machine.dram, criu)
        return eng.now - t0

    elapsed = eng.run_process(driver(eng))
    assert elapsed > 1.0  # the §2.3 restoration barrier
