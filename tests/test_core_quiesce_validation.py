"""Unit tests for quiesce and the twin-kernel cache."""

import pytest

from repro.api.runtime import GpuProcess
from repro.cluster import Machine
from repro.core.quiesce import QUIESCE_COORDINATION, quiesce, resume
from repro.core.validation import TwinCache
from repro.gpu.context import GpuContext
from repro.gpu.cost_model import KernelCost
from repro.gpu.program import build_fill, build_scale
from repro.gpu.ranges import RangeSet
from repro.sim import Engine


def make_process(eng, machine, name="p", gpus=(0,)):
    proc = GpuProcess(eng, machine, name=name, gpu_indices=list(gpus))
    for i in gpus:
        proc.runtime.adopt_context(i, GpuContext(gpu_index=i))
    return proc


# --- quiesce --------------------------------------------------------------------


def test_quiesce_stops_cpu_and_drains_gpu():
    eng = Engine()
    machine = Machine(eng, n_gpus=1)
    proc = make_process(eng, machine)

    def driver(eng):
        buf = yield from proc.runtime.malloc(0, 512)
        # A long-running kernel is in flight when the quiesce begins.
        yield from proc.runtime.launch_kernel(
            0, build_fill(), [buf.addr, 4, 1], 4,
            cost=KernelCost(flops=3e14),  # ~1 s
        )
        t0 = eng.now
        yield from quiesce(eng, [proc])
        drained_at = eng.now
        assert proc.runtime.cpu_stopped
        assert machine.gpu(0).pending_ops == 0
        resume([proc])
        assert not proc.runtime.cpu_stopped
        return drained_at - t0

    elapsed = eng.run_process(driver(eng))
    # The quiesce waited for the in-flight kernel plus coordination.
    assert elapsed > 0.9


def test_quiesce_on_idle_process_costs_only_coordination():
    eng = Engine()
    machine = Machine(eng, n_gpus=1)
    proc = make_process(eng, machine)

    def driver(eng):
        t0 = eng.now
        yield from quiesce(eng, [proc])
        resume([proc])
        return eng.now - t0

    assert eng.run_process(driver(eng)) == pytest.approx(QUIESCE_COORDINATION)


def test_multi_process_quiesce_stops_all():
    eng = Engine()
    machine = Machine(eng, n_gpus=2)
    p1 = make_process(eng, machine, "p1", (0,))
    p2 = make_process(eng, machine, "p2", (1,))

    def driver(eng):
        yield from quiesce(eng, [p1, p2])
        assert p1.runtime.cpu_stopped and p2.runtime.cpu_stopped
        resume([p1, p2])
        assert not p1.runtime.cpu_stopped and not p2.runtime.cpu_stopped

    eng.run_process(driver(eng))


# --- twin cache ----------------------------------------------------------------------


def test_twin_cache_instruments_once():
    cache = TwinCache()
    prog = build_fill()
    t1 = cache.twin_for(prog)
    t2 = cache.twin_for(prog)
    assert t1 is t2
    assert t1.instrumented
    assert prog.name in cache.stats.kernels_instrumented


def test_twin_cache_separates_read_checking_twins():
    cache = TwinCache()
    prog = build_scale()
    write_twin = cache.twin_for(prog, check_reads=False)
    rw_twin = cache.twin_for(prog, check_reads=True)
    assert write_twin is not rw_twin
    assert len(rw_twin.instrs) > len(write_twin.instrs)


def test_launch_stats_and_ratios():
    cache = TwinCache()
    prog_a, prog_b = build_fill(), build_scale()
    cache.observe_launch(prog_a, instrumented=True)
    cache.observe_launch(prog_a, instrumented=True)
    cache.observe_launch(prog_b, instrumented=False)
    cache.twin_for(prog_a)
    stats = cache.stats
    assert stats.launches_total == 3
    assert stats.launches_instrumented == 2
    assert stats.instrumented_launch_ratio == pytest.approx(2 / 3)
    assert stats.instrumented_kernel_ratio == pytest.approx(1 / 2)


def test_empty_stats_ratios_are_zero():
    stats = TwinCache().stats
    assert stats.instrumented_kernel_ratio == 0.0
    assert stats.instrumented_launch_ratio == 0.0


def test_make_validation_carries_ranges():
    cache = TwinCache()
    v = cache.make_validation(RangeSet([(0, 10)]), RangeSet([(20, 30)]))
    assert 5 in v.write_ranges
    assert 25 in v.read_ranges
    assert v.violations == []
