"""Unit tests for clock domains, channels, and the conservative loop."""

import pytest

from repro import obs, units
from repro.cluster import Cluster, Machine, RdmaLink
from repro.core.daemon import Phos
from repro.errors import DeadlockError, InvalidValueError, SimulationError
from repro.gpu.dma import Direction, transfer
from repro.sim import Engine
from repro.sim.domains import MIN_LOOKAHEAD, ClockDomain, DomainChannel, World
from repro.sim.engine import Interrupt
from repro.sim.events import Event
from repro.sim.resources import Resource, acquired


def two_domains():
    world = World()
    return world, world.domain("a"), world.domain("b")


# --- topology validation --------------------------------------------------------


def test_duplicate_domain_name_rejected():
    world = World()
    world.domain("a")
    with pytest.raises(InvalidValueError):
        world.domain("a")


def test_self_channel_rejected():
    world = World()
    a = world.domain("a")
    with pytest.raises(InvalidValueError):
        world.channel(a, a, 1e-6)


@pytest.mark.parametrize("latency", [0.0, -1e-6, float("nan"),
                                     MIN_LOOKAHEAD / 2])
def test_channel_latency_must_be_lookahead(latency):
    world, a, b = two_domains()
    with pytest.raises(InvalidValueError):
        world.channel(a, b, latency)
    with pytest.raises(InvalidValueError):
        DomainChannel.local(Engine(), latency)


def test_channel_endpoints_must_belong_to_world():
    world, a, _ = two_domains()
    other = World().domain("x")
    with pytest.raises(InvalidValueError):
        world.channel(a, other, 1e-6)
    with pytest.raises(InvalidValueError):
        world.channel(Engine(), a, 1e-6)


def test_distinct_engines_need_a_world():
    with pytest.raises(InvalidValueError):
        DomainChannel(None, Engine(), Engine(), 1e-6)


def test_require_channel_by_kind():
    world, a, b = two_domains()
    world.channel(a, b, 1e-6, kind="data")
    dma = world.channel(a, b, 2e-6, kind="dma")
    assert world.require_channel(a, b, kind="dma") is dma
    with pytest.raises(SimulationError):
        world.require_channel(b, a)
    with pytest.raises(SimulationError):
        world.require_channel(a, b, kind="control")


def test_empty_world_cannot_run():
    with pytest.raises(SimulationError):
        World().run()


# --- channel semantics ----------------------------------------------------------


def test_degenerate_channel_delivers_at_latency():
    eng = Engine()
    ch = DomainChannel.local(eng, 0.5)

    def receiver():
        val = yield ch.recv()
        return val, eng.now

    ch.send("hello")
    assert eng.run_process(receiver()) == ("hello", 0.5)


def test_cross_domain_send_recv_timing():
    world, a, b = two_domains()
    ch = world.channel(a, b, 5e-6)
    got = {}

    def sender():
        yield a.timeout(1.0)
        ch.send("x", delay=1e-3)

    def receiver():
        got["val"] = yield ch.recv()
        got["t"] = b.now

    a.spawn(sender())
    b.spawn(receiver())
    world.run()
    assert got == {"val": "x", "t": pytest.approx(1.0 + 5e-6 + 1e-3, abs=0)}


def test_negative_send_delay_rejected():
    world, a, b = two_domains()
    ch = world.channel(a, b, 1e-6)
    with pytest.raises(InvalidValueError):
        ch.send("x", delay=-1.0)


def test_post_runs_in_destination_domain():
    world, a, b = two_domains()
    ch = world.channel(a, b, 5e-6)
    seen = []

    def sender():
        yield a.timeout(1.0)
        ch.post(lambda arg: seen.append((arg, b.now)), "payload")

    a.spawn(sender())
    world.run()
    assert seen == [("payload", pytest.approx(1.0 + 5e-6, abs=0))]


def test_fire_succeeds_destination_event():
    world, a, b = two_domains()
    ch = world.channel(a, b, 5e-6)
    done = Event(b, name="done")
    got = {}

    def sender():
        yield a.timeout(2.0)
        ch.fire(done, 42)

    def receiver():
        got["val"] = yield done
        got["t"] = b.now

    a.spawn(sender())
    b.spawn(receiver())
    world.run()
    assert got == {"val": 42, "t": pytest.approx(2.0 + 5e-6, abs=0)}


def test_fire_rejects_foreign_homed_event():
    world, a, b = two_domains()
    ch = world.channel(a, b, 1e-6)
    with pytest.raises(SimulationError):
        ch.fire(Event(a))  # homed at the source end


def test_interrupt_rejects_foreign_resident_process():
    world, a, b = two_domains()
    ch = world.channel(a, b, 1e-6)

    def idle():
        yield a.timeout(1.0)

    with pytest.raises(SimulationError):
        ch.interrupt(a.spawn(idle()))


def test_cancel_in_flight_drops_message():
    world, a, b = two_domains()
    ch = world.channel(a, b, 5e-6)
    msg = ch.send("doomed")
    assert msg.cancel() is True
    ch.send("kept", delay=1.0)
    got = {}

    def receiver():
        got["val"] = yield ch.recv()
        got["t"] = b.now

    b.spawn(receiver())
    world.run()
    # The first (cancelled) message never lands; the receiver sees the
    # second one, a full second later.
    assert got == {"val": "kept", "t": pytest.approx(1.0 + 5e-6, abs=0)}


def test_cancel_after_delivery_fails():
    world, a, b = two_domains()
    ch = world.channel(a, b, 5e-6)
    msg = ch.send("x")

    def receiver():
        yield ch.recv()

    b.spawn(receiver())
    world.run()
    assert msg.delivered
    assert msg.cancel() is False
    assert "delivered" in repr(msg)


# --- cross-domain interrupt (satellite) -----------------------------------------


def test_channel_interrupt_crosses_domains():
    world, a, b = two_domains()
    ch = world.channel(a, b, 5e-6)
    trace = []

    def victim():
        try:
            yield b.timeout(10.0)
            trace.append(("finished", b.now))
        except Interrupt:
            trace.append(("interrupted", b.now))

    victim_proc = b.spawn(victim())

    def attacker():
        yield a.timeout(1.0)
        ch.interrupt(victim_proc)

    a.spawn(attacker())
    world.run()
    assert trace == [("interrupted", pytest.approx(1.0 + 5e-6, abs=0))]


def test_channel_interrupt_dropped_when_target_finished():
    world, a, b = two_domains()
    ch = world.channel(a, b, 5e-6)

    def quick():
        return 7
        yield  # pragma: no cover - makes it a generator

    victim_proc = b.spawn(quick())
    # Sent at t=0; the victim finishes at t=0, before the 5 us arrival.
    msg = ch.interrupt(victim_proc)
    world.run()
    assert victim_proc.ok and victim_proc.value == 7
    assert msg.delivered  # arrived, found the target finished, dropped


def test_direct_foreign_interrupt_rejected():
    world, a, b = two_domains()
    failure = {}

    def victim():
        yield b.timeout(10.0)

    victim_proc = b.spawn(victim())

    def attacker():
        yield a.timeout(1.0)
        try:
            victim_proc.interrupt()
        except SimulationError as exc:
            failure["msg"] = str(exc)

    a.spawn(attacker())
    world.run(until=2.0)
    assert "DomainChannel.interrupt" in failure["msg"]


def test_timeout_cancel_message_that_already_crossed():
    """A timeout-guarded request whose cancel races the reply: cancelling
    the *request* after delivery is refused, so the caller must cancel
    the reply leg instead."""
    world, a, b = two_domains()
    req_ch = world.channel(a, b, 5e-6, name="req")
    rsp_ch = world.channel(b, a, 5e-6, name="rsp")
    log = []

    def server():
        val = yield req_ch.recv()
        rsp_ch.send(("reply", val))

    def client():
        req = req_ch.send("ping")
        # Give the request time to cross and be served...
        yield a.timeout(1.0)
        # ...then "time out": too late for the request, it crossed long
        # ago.  The reply is already queued locally; it still arrives.
        log.append(("cancel-req", req.cancel()))
        val = yield rsp_ch.recv()
        log.append(("reply", val, a.now))

    b.spawn(server())
    a.spawn(client())
    world.run()
    assert log[0] == ("cancel-req", False)
    # The reply landed in the client-side inbox at ~10 us; the client
    # picks it up as soon as it stops sleeping.
    assert log[1] == ("reply", ("reply", "ping"), 1.0)


# --- domain-affinity guards -----------------------------------------------------


def run_and_catch(world, domain, body):
    """Spawn ``body`` in ``domain``; run; return the failure exception."""
    proc = domain.spawn(body)
    world.run()
    assert proc.triggered and not proc.ok
    return proc.value


def test_foreign_timeout_rejected():
    world, a, b = two_domains()

    def bad():
        yield b.timeout(1.0)

    exc = run_and_catch(world, a, bad())
    assert isinstance(exc, SimulationError)


def test_foreign_resource_rejected():
    world, a, b = two_domains()
    res = Resource(b, capacity=1, name="rb")

    def bad():
        yield from acquired(res)

    exc = run_and_catch(world, a, bad())
    assert isinstance(exc, SimulationError)
    assert "rb" in str(exc)


def test_foreign_event_wait_rejected():
    world, a, b = two_domains()
    ev = Event(b, name="foreign")

    def bad():
        yield ev

    a.spawn(bad())
    # Registering as a waiter on a foreign-domain event is a structural
    # misuse: it fails the whole run, not just the offending process.
    with pytest.raises(SimulationError, match="cross-domain"):
        world.run()


def test_foreign_channel_send_and_recv_rejected():
    world, a, b = two_domains()
    ch = world.channel(a, b, 1e-6)

    def bad_send():
        yield b.timeout(0.0)
        ch.send("x")  # channel sends from a, but b is executing

    exc = run_and_catch(world, b, bad_send())
    assert isinstance(exc, SimulationError)

    world2 = World()
    a2 = world2.domain("a")
    b2 = world2.domain("b")
    ch2 = world2.channel(a2, b2, 1e-6)

    def bad_recv():
        yield ch2.recv()  # received in b's domain, but a is executing

    exc = run_and_catch(world2, a2, bad_recv())
    assert isinstance(exc, SimulationError)


# --- world run semantics --------------------------------------------------------


def test_run_until_deadline_advances_all_clocks():
    world, a, b = two_domains()

    def ticker(eng):
        while True:
            yield eng.timeout(1.0)

    a.spawn(ticker(a))
    world.run(until=3.5)
    assert a.now == 3.5
    assert b.now == 3.5  # idle domain still lands on the deadline
    assert world.now == 3.5


def test_run_deadline_in_past_rejected():
    world, a, _ = two_domains()

    def step():
        yield a.timeout(2.0)

    world.run(a.spawn(step()))
    with pytest.raises(SimulationError):
        world.run(until=1.0)


def test_run_until_event_returns_value():
    world, a, b = two_domains()
    ch = world.channel(a, b, 5e-6)

    def sender():
        yield a.timeout(1.0)
        ch.send("v")

    def receiver():
        val = yield ch.recv()
        return val

    a.spawn(sender())
    proc = b.spawn(receiver())
    assert world.run(proc) == "v"


def test_run_until_event_deadlock():
    world, _, b = two_domains()
    never = Event(b, name="never")
    with pytest.raises(DeadlockError):
        world.run(never)


def test_run_process_and_reentrancy():
    world, a, _ = two_domains()

    def outer():
        yield a.timeout(1.0)
        world.run()  # re-entrant: must be rejected

    exc = run_and_catch(world, a, outer())
    assert isinstance(exc, SimulationError)
    assert "re-entrant" in str(exc)

    def inner():
        yield a.timeout(1.0)
        return "done"

    assert world.run_process(inner()) == "done"


def test_domain_run_delegates_to_world():
    world, a, b = two_domains()

    def step(eng):
        yield eng.timeout(1.0)

    a.spawn(step(a))
    b.spawn(step(b))
    a.run()  # Engine-typed call sites keep working on a domain
    assert a.now == 1.0 and b.now == 1.0


def test_rounds_and_skew_accounting():
    world, a, b = two_domains()
    ch = world.channel(a, b, 5e-6)

    def sender():
        yield a.timeout(1.0)
        ch.send("x")
        yield a.timeout(1.0)

    def receiver():
        yield ch.recv()

    a.spawn(sender())
    b.spawn(receiver())
    world.run()
    assert world.rounds >= 1
    # a ran to 2.0 while b stopped at the 1.0+5us arrival.
    assert world.skew_max > 0.0


# --- clock monotonicity assertion (satellite) -----------------------------------


def test_check_clock_accepts_normal_runs(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK_CLOCK", "1")
    eng = Engine()

    def body():
        yield eng.timeout(1.0)
        yield eng.timeout(0.0)
        return eng.now

    assert eng.run_process(body()) == 1.0


def test_check_clock_catches_backwards_time(monkeypatch):
    from repro.sim.events import K_CALL1

    monkeypatch.setenv("REPRO_CHECK_CLOCK", "1")
    eng = Engine()
    eng.run_process(_advance(eng, 1.0))
    # Forge a record behind the clock (bypassing _push's own guard).
    eng._buckets[0.5] = [(K_CALL1, lambda _arg: None, None)]
    import heapq

    heapq.heappush(eng._theap, 0.5)
    with pytest.raises(SimulationError):
        eng.run()


def _advance(eng, dt):
    yield eng.timeout(dt)


# --- cluster integration --------------------------------------------------------


def test_cluster_duplicate_machine_names_rejected():
    eng = Engine()
    with pytest.raises(InvalidValueError) as err:
        Cluster(eng, [Machine(eng, "n0", 1), Machine(eng, "n0", 1)])
    assert "n0" in str(err.value)


def test_rdma_self_link_rejected():
    eng = Engine()
    m = Machine(eng, "n0", 1)
    with pytest.raises(InvalidValueError):
        RdmaLink(eng, m, m)
    with pytest.raises(InvalidValueError):
        RdmaLink(eng, m, Machine(eng, "n0", 1))  # same name, distinct object


@pytest.mark.parametrize("latency", [0.0, -5e-6, float("nan")])
def test_rdma_link_latency_validated(latency):
    eng = Engine()
    a, b = Machine(eng, "a", 1), Machine(eng, "b", 1)
    with pytest.raises(InvalidValueError):
        RdmaLink(eng, a, b, latency=latency)


def test_rdma_bandwidth_validated():
    eng = Engine()
    a, b = Machine(eng, "a", 1), Machine(eng, "b", 1)
    with pytest.raises(InvalidValueError):
        RdmaLink(eng, a, b, bandwidth=0.0)


def test_machines_on_distinct_engines_need_world():
    with pytest.raises(InvalidValueError):
        RdmaLink(Engine(), Machine(Engine(), "a", 1),
                 Machine(Engine(), "b", 1))


def test_testbed_per_machine_domains():
    world = World()
    cluster = Cluster.testbed(world, n_machines=2, n_gpus=2)
    src, dst = cluster.machines
    assert isinstance(src.engine, ClockDomain)
    assert src.engine is not dst.engine
    link = cluster.link(src, dst)
    got = {}

    def sender():
        # 1 s of drain at the link bandwidth, then notify the far side.
        yield from link.deliver(src, dst, link.bandwidth, value="blob")
        got["sent_at"] = src.engine.now

    def receiver():
        got["val"] = yield link.receive(src, dst)
        got["recv_at"] = dst.engine.now

    src.engine.spawn(sender())
    dst.engine.spawn(receiver())
    world.run()
    assert got["val"] == "blob"
    # Sender resumes at drain end; receiver one propagation later.
    assert got["recv_at"] == pytest.approx(got["sent_at"] + link.latency)


def test_testbed_mode_validation():
    with pytest.raises(InvalidValueError):
        Cluster.testbed(Engine(), clock_domains="per-machine")
    with pytest.raises(InvalidValueError):
        Cluster.testbed(World(), clock_domains="per-banana")


def test_gpu_domains_validation():
    world = World()
    host = world.domain("host")
    g0 = world.domain("g0")
    with pytest.raises(InvalidValueError):
        Machine(host, "m", 2, gpu_domains=[g0])  # wrong length
    with pytest.raises(InvalidValueError):
        Machine(Engine(), "m", 1, gpu_domains=[g0])  # plain-engine host
    other = World().domain("x")
    with pytest.raises(InvalidValueError):
        Machine(host, "m", 1, gpu_domains=[other])  # foreign world


def test_per_gpu_domain_remote_dma_transfer():
    world = World()
    cluster = Cluster.testbed(world, n_machines=1, n_gpus=2,
                              clock_domains="per-gpu")
    machine = cluster.machines[0]
    host = machine.engine
    gpu = machine.gpu(0)
    assert gpu.engine is not host
    nbytes = 1 << 20
    bw = machine.spec.pcie_bw

    def driver():
        moved = yield from transfer(host, gpu.dma, Direction.H2D,
                                    nbytes, bw)
        return moved, host.now

    moved, t = world.run(host.spawn(driver()))
    assert moved == nbytes
    # Request and completion each cross the PCIe channel once.
    base = units.transfer_time(nbytes, bw)
    assert t == pytest.approx(base + 2 * units.PCIE_LINK_LATENCY, rel=1e-12)


def test_phos_pinned_to_machine_domain():
    world, a, b = two_domains()
    machine = Machine(a, "m", 1)
    with pytest.raises(InvalidValueError):
        Phos(b, machine)


# --- observability --------------------------------------------------------------


def test_domain_obs_counters_and_skew_gauge():
    world, a, b = two_domains()
    ch = world.channel(a, b, 5e-6)

    def sender():
        yield a.timeout(1.0)
        ch.send("x")

    def receiver():
        yield ch.recv()

    with obs.observed(a) as ob:
        a.spawn(sender())
        b.spawn(receiver())
        world.run()
    assert ob.metrics.counter("domain/a/events-executed").value > 0
    assert ob.metrics.counter("domain/b/events-executed").value > 0
    assert ob.metrics.gauge("domain/skew-max").value == world.skew_max
    assert world.skew_max > 0.0


def test_domain_events_counted_once():
    world, a, b = two_domains()
    ch = world.channel(a, b, 5e-6)

    def sender():
        yield a.timeout(1.0)
        ch.send("x")

    def receiver():
        yield ch.recv()

    with obs.observed(a) as ob:
        a.spawn(sender())
        b.spawn(receiver())
        world.run()
    total = (ob.metrics.counter("domain/a/events-executed").value
             + ob.metrics.counter("domain/b/events-executed").value)
    assert total == world.events_executed
