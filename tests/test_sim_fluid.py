"""Unit tests for the fluid bandwidth link."""

import pytest

from repro.errors import InvalidValueError
from repro.sim import Engine
from repro.sim.fluid import FluidLink


@pytest.fixture
def eng():
    return Engine()


def test_single_flow_runs_at_full_bandwidth(eng):
    link = FluidLink(eng, bandwidth=100.0)

    def proc(eng):
        yield from link.flow(200.0)
        return eng.now

    assert eng.run_process(proc(eng)) == pytest.approx(2.0)


def test_two_equal_flows_share_evenly(eng):
    link = FluidLink(eng, bandwidth=100.0)
    done = {}

    def mover(eng, name, nbytes):
        yield from link.flow(nbytes)
        done[name] = eng.now

    eng.spawn(mover(eng, "a", 100.0))
    eng.spawn(mover(eng, "b", 100.0))
    eng.run()
    # Both at 50 B/s while together: each finishes at t=2.
    assert done["a"] == pytest.approx(2.0)
    assert done["b"] == pytest.approx(2.0)


def test_short_flow_finishes_then_long_speeds_up(eng):
    link = FluidLink(eng, bandwidth=100.0)
    done = {}

    def mover(eng, name, nbytes):
        yield from link.flow(nbytes)
        done[name] = eng.now

    eng.spawn(mover(eng, "short", 50.0))
    eng.spawn(mover(eng, "long", 150.0))
    eng.run()
    # Shared 50/50 until short drains at t=1 (50 B); long then has 100 B
    # left at full rate: t = 1 + 1 = 2.
    assert done["short"] == pytest.approx(1.0)
    assert done["long"] == pytest.approx(2.0)


def test_weights_bias_sharing(eng):
    link = FluidLink(eng, bandwidth=100.0)
    done = {}

    def mover(eng, name, nbytes, weight):
        yield from link.flow(nbytes, weight=weight)
        done[name] = eng.now

    eng.spawn(mover(eng, "heavy", 75.0, 3.0))
    eng.spawn(mover(eng, "light", 75.0, 1.0))
    eng.run()
    # heavy at 75 B/s finishes at t=1; light at 25 B/s has 50 left,
    # then accelerates to 100: finishes at 1 + 0.5 = 1.5.
    assert done["heavy"] == pytest.approx(1.0)
    assert done["light"] == pytest.approx(1.5)


def test_rate_cap_limits_lone_flow(eng):
    link = FluidLink(eng, bandwidth=100.0)

    def proc(eng):
        yield from link.flow(100.0, rate_cap=20.0)
        return eng.now

    assert eng.run_process(proc(eng)) == pytest.approx(5.0)


def test_rate_cap_redistributes_leftover(eng):
    link = FluidLink(eng, bandwidth=100.0)
    done = {}

    def mover(eng, name, nbytes, cap=None):
        yield from link.flow(nbytes, rate_cap=cap)
        done[name] = eng.now

    eng.spawn(mover(eng, "capped", 20.0, cap=20.0))
    eng.spawn(mover(eng, "free", 80.0))
    eng.run()
    # capped holds 20 B/s, free gets the remaining 80: both end at t=1.
    assert done["capped"] == pytest.approx(1.0)
    assert done["free"] == pytest.approx(1.0)


def test_staggered_arrival(eng):
    link = FluidLink(eng, bandwidth=100.0)
    done = {}

    def first(eng):
        yield from link.flow(150.0)
        done["first"] = eng.now

    def second(eng):
        yield eng.timeout(1.0)
        yield from link.flow(100.0)
        done["second"] = eng.now

    eng.spawn(first(eng))
    eng.spawn(second(eng))
    eng.run()
    # first: 100 B in [0,1] alone, then 50 B at 50 B/s -> t=2.
    # second: 50 B at 50 B/s in [1,2], then 50 B at 100 B/s -> t=2.5.
    assert done["first"] == pytest.approx(2.0)
    assert done["second"] == pytest.approx(2.5)


def test_zero_byte_flow_is_instant(eng):
    link = FluidLink(eng, bandwidth=10.0)

    def proc(eng):
        yield from link.flow(0.0)
        return eng.now

    assert eng.run_process(proc(eng)) == 0.0


def test_invalid_arguments(eng):
    with pytest.raises(InvalidValueError):
        FluidLink(eng, bandwidth=0)
    link = FluidLink(eng, bandwidth=10.0)
    with pytest.raises(InvalidValueError):
        next(link.flow(-1.0))
    with pytest.raises(InvalidValueError):
        next(link.flow(1.0, weight=0))
    with pytest.raises(InvalidValueError):
        next(link.flow(1.0, rate_cap=0))


def test_active_flows_counter(eng):
    link = FluidLink(eng, bandwidth=10.0)
    counts = []

    def mover(eng):
        yield from link.flow(100.0)

    def observer(eng):
        yield eng.timeout(1.0)
        counts.append(link.active_flows)

    eng.spawn(mover(eng))
    eng.spawn(mover(eng))
    eng.spawn(observer(eng))
    eng.run()
    assert counts == [2]


def test_many_flows_conserve_bandwidth(eng):
    link = FluidLink(eng, bandwidth=100.0)
    done = {}

    def mover(eng, i):
        yield from link.flow(100.0)
        done[i] = eng.now

    for i in range(10):
        eng.spawn(mover(eng, i))
    eng.run()
    # 10 flows x 100 B at aggregate 100 B/s -> all finish at t=10.
    for t in done.values():
        assert t == pytest.approx(10.0)
