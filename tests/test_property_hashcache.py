"""Differential property suite: the hash cache never changes bytes.

The incremental hash cache is a pure performance device — with it, a
seal rehashes only chunks overlapping tracked writes; without it
(``REPRO_NO_HASHCACHE=1``), every chunk is rehashed.  These tests
replay identical randomized scenarios (dirty patterns × chunk sizes,
including free/realloc-at-the-same-address and mid-chunk partial
writes) down both paths and require the sealed delta images to be
identical in every stored byte, hash, and aggregate counter — and the
materialized state to match the live ground truth either way.
"""

import random

import pytest

from repro.storage.delta import (
    DeltaImage,
    chunk_hashes,
    materialize,
    seal_delta,
)
from repro.storage.hashcache import KILL_SWITCH_ENV, BufferHashCache
from repro.storage.image import GpuBufferRecord

from tests.toyapp import ToyApp, image_gpu_state


def _canon(image: DeltaImage):
    """Every stored byte/hash/aggregate of a sealed delta, id-free.

    Image ids differ between replays (they are process-global
    counters), so identity is asserted on content keyed by address.
    """
    gpu = {}
    for g, table in image.delta_gpu.items():
        for rec in table.values():
            gpu[(g, rec.addr)] = (
                rec.size, rec.data_len, rec.tag, tuple(rec.hashes),
                tuple(sorted((i, bytes(c)) for i, c in rec.chunks.items())),
            )
    return (
        gpu,
        tuple(sorted(image.cpu_pages.items())),
        image.chunk_bytes,
        image.stored_chunk_bytes,
        image.stored_page_bytes,
        image.chunks_written,
        image.chunks_reused,
        image.reused_buffers,
    )


def _play(seed: int, chunk_bytes: int, rounds: int = 3):
    """One randomized chain of seals; returns each round's canon form.

    Reads the kill-switch environment through the cache exactly like
    the protocol does, so running it under both settings is the
    differential experiment.
    """
    rng = random.Random(seed)
    cache = BufferHashCache()
    ids = iter(range(1, 1_000_000))
    cb = chunk_bytes

    live = {}
    addr = 0x10_000
    for i in range(rng.randint(3, 6)):
        data_len = rng.choice([
            0, 1, cb // 2, cb, 2 * cb - 1, 3 * cb, 4 * cb + 7,
        ])
        live[next(ids)] = {
            "addr": addr, "size": max(cb, data_len) * 4,
            "data": bytearray(rng.randbytes(data_len)), "tag": f"b{i}",
        }
        addr += 1 << 20

    def capture(image, buf_ids):
        for bid in sorted(buf_ids):
            buf = live[bid]
            image.add_gpu_buffer(0, GpuBufferRecord(
                buffer_id=bid, addr=buf["addr"], size=buf["size"],
                data=bytes(buf["data"]), tag=buf["tag"],
            ))

    root = DeltaImage(name="root", chunk_bytes=cb)
    capture(root, live)
    seal_delta(root, None, cache=cache)
    root.finalize(0.0)
    parent = root
    canons = [_canon(root)]

    for r in range(1, rounds + 1):
        parent_ids = set(live)
        written, freed = set(), set()
        for bid in list(live):
            buf, roll = live[bid], rng.random()
            data_len = len(buf["data"])
            if roll < 0.25 and data_len:
                # Mid-chunk partial write: a sub-chunk, unaligned span.
                start = rng.randrange(data_len)
                end = min(data_len,
                          start + rng.randint(1, max(1, cb // 3)))
                buf["data"][start:end] = rng.randbytes(end - start)
                cache.note_write(bid, start, end)
                written.add(bid)
            elif roll < 0.40 and data_len:
                # Prefix rewrite spanning whole chunks.
                end = rng.randint(1, data_len)
                buf["data"][:end] = rng.randbytes(end)
                cache.note_write(bid, 0, end)
                written.add(bid)
            elif roll < 0.50 and data_len:
                # Silent write: tracked as dirty, bytes unchanged —
                # the over-approximation the cache must tolerate.
                start = rng.randrange(data_len)
                cache.note_write(bid, start, start + 1)
                written.add(bid)
            elif roll < 0.60:
                # Free + realloc at the SAME address: new identity,
                # fresh bytes — any address-keyed cache would go stale.
                cache.forget(bid)
                freed.add(bid)
                nid = next(ids)
                live[nid] = {
                    "addr": buf["addr"], "size": buf["size"],
                    "data": bytearray(rng.randbytes(data_len)),
                    "tag": buf["tag"],
                }
                del live[bid]
            # else: untouched — becomes a pure parent reference.

        child = DeltaImage(
            name=f"round-{r}", parent_id=parent.id,
            parent_name=parent.name, parent_ref=parent, chunk_bytes=cb,
        )
        captured = written | (set(live) - parent_ids)
        capture(child, captured)
        reused = {0: (parent_ids - written - freed)}
        parent_full = materialize(parent)
        seal_delta(child, parent_full, reused=reused, freed={0: freed},
                   cache=cache)
        child.finalize(float(r))

        # Ground truth: the chain must materialize to the live state.
        full = materialize(child)
        got = {rec.addr: bytes(rec.data)
               for rec in full.gpu_buffers.get(0, {}).values()}
        want = {buf["addr"]: bytes(buf["data"]) for buf in live.values()}
        assert got == want, f"round {r} materialized state diverged"

        canons.append(_canon(child))
        parent = child
    return canons


@pytest.mark.parametrize("chunk_bytes", [64, 256, 1024])
@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
def test_cache_on_off_byte_identical(seed, chunk_bytes, monkeypatch):
    monkeypatch.delenv(KILL_SWITCH_ENV, raising=False)
    with_cache = _play(seed, chunk_bytes)
    monkeypatch.setenv(KILL_SWITCH_ENV, "1")
    without_cache = _play(seed, chunk_bytes)
    assert with_cache == without_cache


def test_mid_chunk_partial_write_stores_only_touched_chunk():
    cb = 256
    cache = BufferHashCache()
    data = bytearray(bytes(range(256)) * 4)  # 4 chunks
    root = DeltaImage(name="root", chunk_bytes=cb)
    root.add_gpu_buffer(0, GpuBufferRecord(1, 0x1000, 4096, bytes(data)))
    seal_delta(root, None, cache=cache)
    root.finalize(0.0)

    # Flip 3 bytes in the middle of chunk 2; track the exact span.
    data[2 * cb + 100 : 2 * cb + 103] = b"xyz"
    cache.note_write(1, 2 * cb + 100, 2 * cb + 103)
    child = DeltaImage(name="child", parent_id=root.id, parent_ref=root,
                       chunk_bytes=cb)
    child.add_gpu_buffer(0, GpuBufferRecord(1, 0x1000, 4096, bytes(data)))
    seal_delta(child, materialize(root), cache=cache)

    rec = child.delta_gpu[0][1]
    assert set(rec.chunks) == {2}
    assert rec.hashes == chunk_hashes(bytes(data), cb)
    assert child.stored_chunk_bytes == cb


def test_realloc_at_same_address_is_a_new_buffer():
    """A freed-and-reallocated buffer shares no chunks with the old id,
    even at the same address with partially identical bytes."""
    cb = 256
    cache = BufferHashCache()
    old = bytes(range(256)) * 2
    root = DeltaImage(name="root", chunk_bytes=cb)
    root.add_gpu_buffer(0, GpuBufferRecord(7, 0x2000, 4096, old))
    seal_delta(root, None, cache=cache)
    root.finalize(0.0)

    cache.forget(7)
    new = old[:cb] + bytes(cb)  # first chunk identical to the parent's
    child = DeltaImage(name="child", parent_id=root.id, parent_ref=root,
                       chunk_bytes=cb)
    child.add_gpu_buffer(0, GpuBufferRecord(8, 0x2000, 4096, new))
    seal_delta(child, materialize(root), freed={0: {7}}, cache=cache)

    rec = child.delta_gpu[0][8]
    # Different buffer id: every chunk is local, no parent reuse.
    assert set(rec.chunks) == {0, 1}
    assert 7 not in child.delta_gpu[0]


def _protocol_chain(monkeypatch, kill_switch: bool):
    """A full incremental protocol chain (root + two deltas)."""
    if kill_switch:
        monkeypatch.setenv(KILL_SWITCH_ENV, "1")
    else:
        monkeypatch.delenv(KILL_SWITCH_ENV, raising=False)
    from repro.api.runtime import GpuProcess
    from repro.cluster import Machine
    from repro.core.daemon import Phos
    from repro.gpu.context import GpuContext
    from repro.sim import Engine

    eng = Engine()
    machine = Machine(eng, n_gpus=1)
    phos = Phos(eng, machine, use_context_pool=False)
    process = GpuProcess(eng, machine, name="app", gpu_indices=[0],
                         cpu_pages=8)
    process.runtime.adopt_context(0, GpuContext(gpu_index=0))
    phos.attach(process)
    app = ToyApp(process, buf_size=1 << 20)

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        root, _ = yield phos.checkpoint(process, mode="incremental",
                                        name="root")
        yield from app.run(2, start=2)
        d1, _ = yield phos.checkpoint(process, mode="incremental",
                                      name="d1", parent=root)
        yield from app.run(2, start=4)
        d2, _ = yield phos.checkpoint(process, mode="incremental",
                                      name="d2", parent=d1)
        return root, d1, d2

    images = eng.run_process(driver(eng))
    eng.run()
    return [_canon(img) for img in images], eng.now, images


def test_protocol_chain_cache_on_off_identical(monkeypatch):
    """End-to-end: same images AND same virtual time either way."""
    canon_on, t_on, images_on = _protocol_chain(monkeypatch, False)
    canon_off, t_off, _ = _protocol_chain(monkeypatch, True)
    assert canon_on == canon_off
    assert t_on == t_off
    # The chain also materializes to a plain full image.
    full = image_gpu_state(images_on[-1])
    assert full  # non-empty, hashes verified inside materialize
