"""Unit tests for the workload models (Table 4 fidelity, determinism)."""

import pytest

from repro.apps.base import make_workload, provision
from repro.apps.specs import APP_SPECS, get_spec
from repro.cluster import Machine
from repro.errors import InvalidValueError
from repro.sim import Engine


def run_app(spec_name, steps=2, warm=1):
    eng = Engine()
    spec = get_spec(spec_name)
    machine = Machine(eng, n_gpus=max(spec.n_gpus, 1))
    process, workload = provision(eng, machine, spec)

    def driver(eng):
        yield from workload.setup()
        yield from workload.run(warm)  # JIT/module loads happen here
        t0 = eng.now
        yield from workload.run(steps)
        return (eng.now - t0) / steps

    step_time = eng.run_process(driver(eng))
    return eng, process, workload, step_time


def test_unknown_spec_rejected():
    with pytest.raises(InvalidValueError):
        get_spec("nonexistent-app")


def test_gpu_count_mismatch_rejected():
    eng = Engine()
    machine = Machine(eng, n_gpus=1)
    from repro.api.runtime import GpuProcess

    process = GpuProcess(eng, machine, "p", [0])
    with pytest.raises(InvalidValueError):
        make_workload(process, get_spec("llama2-13b-train"))


@pytest.mark.parametrize("spec_name", ["resnet152-train", "ppo-train"])
def test_buffer_inventory_matches_table4(spec_name):
    eng, process, workload, _ = run_app(spec_name, steps=1)
    spec = get_spec(spec_name)
    for gpu_index in process.gpu_indices:
        count = len(process.runtime.allocations[gpu_index])
        assert count == pytest.approx(spec.n_buffers, rel=0.06)
        total = sum(b.size for b in process.runtime.allocations[gpu_index])
        assert total <= spec.mem_per_gpu
        assert total >= 0.75 * spec.mem_per_gpu


def test_step_time_calibration_single_gpu():
    _, _, _, measured = run_app("resnet152-train", steps=3)
    assert measured == pytest.approx(get_spec("resnet152-train").step_time, rel=0.25)


def test_llama_13b_infer_token_time():
    _, _, _, measured = run_app("llama2-13b-infer", steps=4)
    assert measured == pytest.approx(get_spec("llama2-13b-infer").step_time, rel=0.3)


def test_multi_gpu_training_runs():
    eng, process, workload, step = run_app("llama2-13b-train", steps=1)
    assert len(process.gpu_indices) == 8
    assert step == pytest.approx(6.9, rel=0.35)
    assert workload.comm is not None


def test_training_writes_most_buffers_each_step():
    eng, process, workload, _ = run_app("resnet152-train", steps=1)
    g = workload.groups[0]
    # weights, optimizer state and activations were all touched.
    for name in ("weights", "opt_m", "opt_v", "act"):
        group = g[name]
        written = sum(
            1 for b in group.buffers if b.snapshot() != bytes(b.data_size)
        )
        assert written > 0, name


def test_workload_determinism_across_runs():
    def final_state():
        eng, process, workload, _ = run_app("ppo-train", steps=2)
        return {
            b.tag: b.snapshot() for b in process.runtime.allocations[0]
        }

    assert final_state() == final_state()


def test_inference_appends_kv_cache():
    eng, process, workload, _ = run_app("llama2-13b-infer", steps=2)
    kv = workload.groups[0]["kv"]
    touched = sum(1 for b in kv.buffers if b.snapshot() != bytes(b.data_size))
    assert touched > 0


def test_bind_restored_finds_all_buffers():
    eng, process, workload, _ = run_app("resnet152-train", steps=1)
    # Rebinding to the same process must reconstruct identical groups.
    before = {
        name: [b.id for b in group.buffers]
        for name, group in workload.groups[0].items()
    }
    workload.bind_restored(process)
    after = {
        name: [b.id for b in group.buffers]
        for name, group in workload.groups[0].items()
    }
    assert before == after


def test_cpu_pages_are_huge_pages():
    eng, process, workload, _ = run_app("resnet152-train", steps=1)
    from repro.apps.base import CPU_PAGE_SIZE

    assert process.host.memory.page_size == CPU_PAGE_SIZE
    assert process.host.memory.logical_bytes >= 1 * 2**30  # >= 1 GiB


def test_all_specs_construct():
    for name, spec in APP_SPECS.items():
        eng = Engine()
        machine = Machine(eng, n_gpus=spec.n_gpus)
        process, workload = provision(eng, machine, spec)
        assert workload.spec.name == name
