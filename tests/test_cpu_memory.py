"""Unit tests for host memory pages and page-table bits."""

import pytest

from repro.cpu.memory import (
    FAULT_NOT_PRESENT,
    FAULT_WRITE_PROTECTED,
    PAGE_DATA_SIZE,
    HostMemory,
)
from repro.errors import InvalidValueError


def page_bytes(fill):
    return bytes([fill] * PAGE_DATA_SIZE)


@pytest.fixture
def mem():
    return HostMemory(n_pages=8)


def test_pages_start_zeroed_present_unprotected(mem):
    for page in mem:
        assert page.present and not page.write_protected and not page.soft_dirty
    assert mem.read(0) == page_bytes(0)


def test_write_read_roundtrip(mem):
    mem.write(3, page_bytes(7))
    assert mem.read(3) == page_bytes(7)


def test_write_sets_soft_dirty(mem):
    mem.write(1, page_bytes(1))
    mem.write(5, page_bytes(2))
    assert mem.dirty_pages() == [1, 5]


def test_clear_soft_dirty(mem):
    mem.write(1, page_bytes(1))
    mem.clear_soft_dirty()
    assert mem.dirty_pages() == []


def test_version_increments_on_write(mem):
    v0 = mem.pages[2].version
    mem.write(2, page_bytes(9))
    assert mem.pages[2].version == v0 + 1


def test_out_of_range_rejected(mem):
    with pytest.raises(InvalidValueError):
        mem.read(8)
    with pytest.raises(InvalidValueError):
        mem.write(-1, page_bytes(0))


def test_write_protect_faults_before_write(mem):
    events = []

    def handler(index, kind):
        events.append((index, kind, mem.read(index)))  # old content visible
        mem.unprotect(index)

    mem.fault_handler = handler
    mem.write(2, page_bytes(1))
    mem.protect_all()
    mem.write(2, page_bytes(2))
    assert events == [(2, FAULT_WRITE_PROTECTED, page_bytes(1))]
    assert mem.read(2) == page_bytes(2)


def test_protected_write_without_handler_raises(mem):
    mem.protect_all()
    with pytest.raises(InvalidValueError):
        mem.write(0, page_bytes(1))


def test_handler_must_unprotect(mem):
    mem.fault_handler = lambda index, kind: None
    mem.protect_all()
    with pytest.raises(InvalidValueError, match="unprotect"):
        mem.write(0, page_bytes(1))


def test_not_present_faults_on_read(mem):
    loads = []

    def handler(index, kind):
        loads.append((index, kind))
        mem.mark_present(index)

    mem.fault_handler = handler
    mem.mark_all_not_present()
    mem.read(4)
    assert loads == [(4, FAULT_NOT_PRESENT)]


def test_not_present_faults_on_write(mem):
    def handler(index, kind):
        mem.mark_present(index)

    mem.fault_handler = handler
    mem.mark_all_not_present()
    mem.write(4, page_bytes(3))
    assert mem.read(4) == page_bytes(3)


def test_present_page_does_not_fault(mem):
    mem.fault_handler = lambda *a: pytest.fail("unexpected fault")
    mem.read(0)
    mem.write(0, page_bytes(1))


def test_word_helpers(mem):
    mem.write_word(2, 123456789)
    assert mem.read_word(2) == 123456789


def test_logical_bytes(mem):
    from repro.units import PAGE_SIZE

    assert mem.logical_bytes == 8 * PAGE_SIZE


def test_zero_pages_rejected():
    with pytest.raises(InvalidValueError):
        HostMemory(0)
