"""Unit tests for the cost model, context costs, and unit helpers."""

import pytest

from repro import units
from repro.errors import InvalidValueError
from repro.gpu.context import ContextRequirements, GpuContext, create_context
from repro.gpu.cost_model import (
    CUDA_CHECKPOINT_SPEC,
    DEFAULT_CONTEXT_COSTS,
    SINGULARITY_SPEC,
    GpuSpec,
    KernelCost,
    kernel_duration,
    nvlink_transfer_time,
    on_device_copy_time,
    pcie_transfer_time,
)
from repro.sim import Engine


# --- units -------------------------------------------------------------------------


def test_fmt_bytes():
    assert units.fmt_bytes(512) == "512 B"
    assert units.fmt_bytes(2048) == "2.0 KiB"
    assert units.fmt_bytes(72 * units.GIB) == "72.0 GiB"


def test_fmt_seconds():
    assert units.fmt_seconds(5e-6) == "5 us"
    assert units.fmt_seconds(0.185) == "185 ms"
    assert units.fmt_seconds(6.9) == "6.90 s"
    assert units.fmt_seconds(600) == "10.0 min"
    assert units.fmt_seconds(-0.5) == "-500 ms"


def test_transfer_time():
    assert units.transfer_time(32 * units.GB, 32 * units.GB) == pytest.approx(1.0)
    assert units.transfer_time(0, 1.0) == 0.0
    with pytest.raises(ValueError):
        units.transfer_time(1, 0)
    with pytest.raises(ValueError):
        units.transfer_time(-1, 1)


# --- roofline ------------------------------------------------------------------------


def test_compute_bound_kernel():
    spec = GpuSpec()
    cost = KernelCost(flops=spec.flops, bytes_moved=0)
    assert kernel_duration(cost, spec) == pytest.approx(
        1.0 + spec.launch_overhead
    )


def test_memory_bound_kernel():
    spec = GpuSpec()
    cost = KernelCost(flops=0, bytes_moved=spec.hbm_bw)
    assert kernel_duration(cost, spec) == pytest.approx(
        1.0 + spec.launch_overhead
    )


def test_roofline_takes_max():
    spec = GpuSpec()
    cost = KernelCost(flops=spec.flops, bytes_moved=2 * spec.hbm_bw)
    assert kernel_duration(cost, spec) == pytest.approx(
        2.0 + spec.launch_overhead
    )


def test_validator_overhead_scales_with_memory_intensity():
    spec = GpuSpec()
    memory_heavy = KernelCost(flops=1e12, memory_intensity=1.0)
    compute_heavy = KernelCost(flops=1e12, memory_intensity=0.1)
    base = kernel_duration(memory_heavy, spec)
    mem_over = kernel_duration(memory_heavy, spec, instrumented=True) / base
    cmp_over = kernel_duration(compute_heavy, spec, instrumented=True) / base
    assert mem_over == pytest.approx(1.12)  # Fig. 15's 12% cap
    assert cmp_over < mem_over


def test_kernel_cost_validation():
    with pytest.raises(InvalidValueError):
        KernelCost(flops=-1)
    with pytest.raises(InvalidValueError):
        KernelCost(memory_intensity=1.5)


def test_transfer_helpers():
    spec = GpuSpec()
    assert pcie_transfer_time(spec.pcie_bw, spec) == pytest.approx(1.0)
    assert nvlink_transfer_time(spec.nvlink_bw, spec) == pytest.approx(1.0)
    # On-device copy reads and writes HBM.
    assert on_device_copy_time(spec.hbm_bw, spec) == pytest.approx(2.0)


def test_baseline_specs_order():
    spec = GpuSpec()
    assert (CUDA_CHECKPOINT_SPEC.effective_pcie_bw(spec)
            < SINGULARITY_SPEC.effective_pcie_bw(spec))
    assert CUDA_CHECKPOINT_SPEC.per_buffer_overhead > 0


# --- context costs ----------------------------------------------------------------------


def test_full_context_creation_time_components():
    c = DEFAULT_CONTEXT_COSTS
    t = c.full_creation_time(n_modules=74, use_cublas=True, nccl_gpus=0)
    expected = c.driver_init + c.memory_setup + 74 * c.per_module_load + c.cublas_create
    assert t == pytest.approx(expected)
    # Matches §2.3's ~3.1 s for a Llama2-13B-inference-sized process.
    assert 2.5 < t < 3.7


def test_context_creation_process():
    eng = Engine()
    reqs = ContextRequirements(n_modules=10, use_cublas=False, nccl_gpus=2)

    def driver(eng):
        ctx = yield from create_context(eng, 0, reqs)
        return ctx, eng.now

    (ctx, elapsed) = eng.run_process(driver(eng))
    assert not ctx.has_cublas
    assert ctx.nccl_scope == 2
    assert len(ctx.loaded_modules) == 10
    assert elapsed == pytest.approx(
        DEFAULT_CONTEXT_COSTS.full_creation_time(10, False, 2)
    )


def test_requirements_satisfaction():
    ctx = GpuContext(gpu_index=0, has_cublas=True, nccl_scope=8)
    assert ContextRequirements(n_modules=5, nccl_gpus=4).satisfied_by(ctx)
    assert not ContextRequirements(n_modules=0, nccl_gpus=16).satisfied_by(ctx)
    bare = GpuContext(gpu_index=0, has_cublas=False)
    assert not ContextRequirements(n_modules=0, use_cublas=True).satisfied_by(bare)
    assert ContextRequirements(n_modules=0, use_cublas=False).satisfied_by(bare)
