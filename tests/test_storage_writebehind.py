"""Unit tests: the asynchronous tiered write-behind drainer."""

import pytest

from repro import chaos
from repro.chaos import FaultPlan, FaultSpec
from repro.errors import ReproError
from repro.sim.engine import Engine
from repro.storage.delta import DeltaBufferRecord, DeltaImage
from repro.storage.image import CheckpointImage, GpuBufferRecord
from repro.storage.media import DramMedia, Medium, tier_stack
from repro.storage.writebehind import (
    DRAIN_PROTOCOL,
    WriteBehindDrainer,
    payload_bytes,
    tier_replica,
)
from repro.units import GB


def _full_image(name="img", nbytes=1 << 20):
    image = CheckpointImage(name=name)
    image.gpu_buffers = {0: {1: GpuBufferRecord(1, 0x1000, nbytes, b"x" * 64)}}
    image.add_cpu_page(0, b"p" * 4096)
    image.finalize(0.0)
    return image


def _delta_image(name="delta", parent_id=None):
    image = DeltaImage(name=name, parent_id=parent_id, sealed=True)
    rec = DeltaBufferRecord(buffer_id=1, addr=0x1000, size=1 << 20,
                            data_len=512, hashes=[b"h0", b"h1"])
    rec.chunks[0] = b"c" * 256
    image.add_delta_record(0, rec)
    image.finalize(0.0)
    return image


def _world(depth=2):
    eng = Engine()
    dram = DramMedia(eng)
    tiers = tier_stack(eng, dram)
    drainer = WriteBehindDrainer(eng, tiers, depth=depth)
    drainer.start()
    return eng, dram, tiers, drainer


# -- payload / replica helpers ----------------------------------------------

def test_payload_bytes_delta_vs_full():
    assert payload_bytes(_full_image()) == (1 << 20) + 4096
    assert payload_bytes(_delta_image()) == 256


def test_tier_replica_shares_payload_with_fresh_flags():
    image = _delta_image()
    replica = tier_replica(image)
    assert replica.id == image.id
    assert replica.delta_gpu is image.delta_gpu
    assert replica.cpu_pages is image.cpu_pages
    assert replica.parent_ref is None
    assert replica.finalized and not replica.committed
    assert replica.stored_bytes() == image.stored_bytes()
    # Committing the replica must not mark the original committed.
    catalog_flags = (image.committed, image.revoked)
    replica.committed = True
    assert (image.committed, image.revoked) == catalog_flags


def test_tier_stack_shape():
    eng = Engine()
    dram = DramMedia(eng, name="d")
    tiers = tier_stack(eng, dram)
    assert tiers[0] is dram
    assert [t.name for t in tiers] == ["d", "d-ssd", "d-remote"]


def test_drainer_requires_two_tiers_and_positive_depth():
    eng = Engine()
    dram = DramMedia(eng)
    with pytest.raises(ReproError, match="two tiers"):
        WriteBehindDrainer(eng, [dram])
    with pytest.raises(ReproError, match="depth"):
        WriteBehindDrainer(eng, tier_stack(eng, dram), depth=0)


# -- happy path --------------------------------------------------------------

def test_drain_replicates_down_the_stack():
    eng, dram, tiers, drainer = _world()
    image = _full_image()
    dram.images.stage(image)
    dram.images.commit(image)

    def producer():
        yield from drainer.enqueue(image)
        drainer.finish()

    eng.spawn(producer(), name="producer")
    eng.run(until=drainer.done)
    assert drainer.stats.images_drained == 1
    assert drainer.failed is None
    nbytes = payload_bytes(image)
    for tier in tiers[1:]:
        replica = tier.images.lookup(image.id)
        assert replica is not None and replica.committed
        assert drainer.stats.bytes_per_tier[tier.name] == nbytes
    # The SSD hop is the slow link: virtual time reflects its bandwidth.
    assert eng.now > 0


def test_drain_preserves_delta_chain_order():
    """A delta only commits on a tier after its parent did there."""
    eng, dram, tiers, drainer = _world()
    root = _delta_image("root")
    child = _delta_image("child", parent_id=root.id)
    for image in (root, child):
        dram.images.stage(image)
        dram.images.commit(image)

    def producer():
        yield from drainer.enqueue(root)
        yield from drainer.enqueue(child)
        drainer.finish()

    eng.spawn(producer(), name="producer")
    eng.run(until=drainer.done)
    assert drainer.failed is None
    for tier in tiers[1:]:
        assert tier.images.lookup(child.id).committed
        assert tier.images.lookup(root.id).committed


def test_backpressure_blocks_when_queue_full():
    eng = Engine()
    dram = DramMedia(eng)
    slow = Medium(eng, "slow", write_bw=1 * GB, read_bw=1 * GB)
    drainer = WriteBehindDrainer(eng, [dram, slow], depth=1)
    drainer.start()
    images = [_full_image(f"i{k}", nbytes=1 << 30) for k in range(4)]
    for image in images:
        dram.images.stage(image)
        dram.images.commit(image)

    def producer():
        for image in images:
            yield from drainer.enqueue(image)
        drainer.finish()

    eng.spawn(producer(), name="producer")
    eng.run(until=drainer.done)
    assert drainer.stats.images_drained == 4
    assert drainer.stats.backpressure_waits > 0


def test_enqueue_after_finish_is_dropped():
    eng, dram, tiers, drainer = _world()
    image = _full_image()
    dram.images.stage(image)
    dram.images.commit(image)
    drainer.finish()

    def producer():
        accepted = yield from drainer.enqueue(image)
        return accepted

    accepted = eng.run_process(producer())
    eng.run(until=drainer.done)
    assert accepted is False
    assert drainer.stats.images_dropped == 1
    assert tiers[1].images.lookup(image.id) is None


# -- crash mid-drain ---------------------------------------------------------

@pytest.mark.parametrize("phase,ssd_committed", [
    ("drain:t1", False),    # dies before the SSD hop moves bytes
    ("publish:t1", False),  # dies after the move, before the commit
    ("drain:t2", True),     # SSD committed, remote never staged
    ("publish:t2", True),   # SSD committed, remote staged-then-revoked
])
def test_crash_mid_drain_revokes_partial_replica(phase, ssd_committed):
    eng, dram, tiers, drainer = _world()
    image = _full_image()
    dram.images.stage(image)
    dram.images.commit(image)
    plan = FaultPlan(faults=(FaultSpec(
        kind="crash-checkpointer", protocol=DRAIN_PROTOCOL, phase=phase,
    ),), seed=1)
    injector = chaos.install(plan, engine=eng)
    try:
        def producer():
            yield from drainer.enqueue(image)
            drainer.finish()

        eng.spawn(producer(), name="producer")
        eng.run(until=drainer.done)
    finally:
        chaos.uninstall()

    assert len(injector.injected) == 1
    assert drainer.failed is not None
    assert not drainer.alive
    # DRAM original is untouched and still restorable.
    assert dram.images.is_committed(image)
    assert not image.revoked
    ssd, remote = tiers[1], tiers[2]
    # No tier ever exposes a staged (torn) replica.
    for tier in (ssd, remote):
        assert not tier.images.staged_images()
    assert (ssd.images.lookup(image.id) is not None) == ssd_committed
    assert remote.images.lookup(image.id) is None
    if phase in ("publish:t1", "publish:t2"):
        assert drainer.stats.revoked_partials == 1


def test_dead_drainer_unblocks_waiting_producer():
    """A producer blocked on backpressure must not deadlock when the
    drainer dies: its enqueue returns False."""
    eng = Engine()
    dram = DramMedia(eng)
    slow = Medium(eng, "slow", write_bw=1 * GB, read_bw=1 * GB)
    drainer = WriteBehindDrainer(eng, [dram, slow], depth=1)
    drainer.start()
    images = [_full_image(f"i{k}", nbytes=1 << 30) for k in range(3)]
    for image in images:
        dram.images.stage(image)
        dram.images.commit(image)
    plan = FaultPlan(faults=(FaultSpec(
        kind="crash-checkpointer", protocol=DRAIN_PROTOCOL,
        phase="drain:t1", occurrence=2,
    ),), seed=1)
    chaos.install(plan, engine=eng)
    try:
        def producer():
            results = []
            for image in images:
                accepted = yield from drainer.enqueue(image)
                results.append(accepted)
            return results

        results = eng.run_process(producer())
        eng.run()
    finally:
        chaos.uninstall()
    assert drainer.failed is not None
    assert results[0] is True          # first image drained
    assert False in results            # a later one was dropped
    assert drainer.stats.images_dropped >= 1
