"""Unit tests for the timeline tracer."""

import pytest

from repro.sim import Engine, Tracer


@pytest.fixture
def eng():
    return Engine()


def test_span_duration(eng):
    tracer = Tracer(eng)

    def proc(eng):
        span = tracer.begin("copy")
        yield eng.timeout(2.0)
        tracer.end(span)

    eng.run_process(proc(eng))
    assert tracer.total("copy") == 2.0


def test_open_span_duration_rejected(eng):
    tracer = Tracer(eng)
    span = tracer.begin("open")
    with pytest.raises(ValueError):
        _ = span.duration


def test_double_close_rejected(eng):
    tracer = Tracer(eng)
    span = tracer.begin("x")
    tracer.end(span)
    with pytest.raises(ValueError):
        tracer.end(span)


def test_breakdown_aggregates_by_label(eng):
    tracer = Tracer(eng)

    def proc(eng):
        for label, dt in [("a", 1.0), ("b", 2.0), ("a", 3.0)]:
            span = tracer.begin(label)
            yield eng.timeout(dt)
            tracer.end(span)

    eng.run_process(proc(eng))
    assert tracer.breakdown() == {"a": 4.0, "b": 2.0}


def test_marks_record_time_and_meta(eng):
    tracer = Tracer(eng)

    def proc(eng):
        yield eng.timeout(1.5)
        tracer.mark("quiesce-done", gpus=8)

    eng.run_process(proc(eng))
    assert tracer.points == [(1.5, "quiesce-done", {"gpus": 8})]


def test_spans_named_filters_open_spans(eng):
    tracer = Tracer(eng)
    tracer.begin("never-closed")
    closed = tracer.begin("closed")
    tracer.end(closed)
    assert list(tracer.spans_named("never-closed")) == []
    assert len(list(tracer.spans_named("closed"))) == 1
