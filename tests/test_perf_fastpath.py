"""Differential tests for the ``repro.perf`` fast path.

The fast path's contract is *observational equivalence*: a launch served
by a compiled plan must be indistinguishable — bytes, steps, recorded
access ranges, violations — from the same launch interpreted
instruction-by-instruction, and the coalesced DMA transfer must hit the
exact virtual-time stamps of the per-chunk release loop.  These tests
enforce the contract differentially: every scenario runs on both paths
and the results are compared field by field.
"""

import random

import pytest

from repro import units
from repro.gpu.dma import (
    APP_PRIORITY,
    CHECKPOINT_PRIORITY,
    Direction,
    DmaEngineSet,
    transfer,
)
from repro.gpu.instrument import instrument_program
from repro.gpu.interpreter import ValidationState, run_kernel
from repro.gpu.memory import DeviceMemory
from repro.gpu.program import (
    build_copy,
    build_fill,
    build_gather,
    build_inplace_add,
    build_partial_fill,
    build_reduce_sum,
    build_saxpy,
    build_scale,
    build_scatter,
    build_struct_kernel,
)
from repro.gpu.ranges import RangeSet
from repro.sim.engine import Engine
from repro.units import MIB

N_WORDS = 32


def _fresh_world(rng):
    mem = DeviceMemory(capacity=16 * MIB, default_data_size=8 * N_WORDS)
    bufs = [mem.alloc(8 * N_WORDS, tag=f"b{i}") for i in range(4)]
    for buf in bufs:
        for i in range(N_WORDS):
            buf.store_word(buf.addr + 8 * i, rng.randrange(0, 2**40))
    # idx-style contents for gather/scatter: in-range word indices.
    for i in range(N_WORDS):
        bufs[1].store_word(bufs[1].addr + 8 * i, rng.randrange(0, N_WORDS))
    return mem, bufs


def _scenario(rng):
    """One random launch: (program, args builder, n_threads)."""
    n = rng.choice([1, 2, 3, 7, 8, 16, N_WORDS])
    n_threads = rng.choice([n, n + rng.randrange(0, 4)])
    kind = rng.choice([
        "copy", "scale", "saxpy", "fill", "inplace", "reduce",
        "gather", "scatter", "partial", "struct",
    ])
    if kind == "copy":
        return build_copy(), (lambda b: [b[0].addr, b[2].addr, n]), n_threads
    if kind == "scale":
        return (build_scale(factor=rng.randrange(1, 9)),
                (lambda b: [b[0].addr, b[2].addr, n]), n_threads)
    if kind == "saxpy":
        a = rng.randrange(0, 5)
        return (build_saxpy(),
                (lambda b: [a, b[0].addr, b[2].addr, b[3].addr, n]),
                n_threads)
    if kind == "fill":
        v = rng.randrange(0, 999)
        return build_fill(), (lambda b: [b[2].addr, n, v]), n_threads
    if kind == "inplace":
        return build_inplace_add(), (lambda b: [b[2].addr, n]), n_threads
    if kind == "reduce":
        return (build_reduce_sum(),
                (lambda b: [b[0].addr, b[3].addr, n]), n_threads)
    if kind == "gather":
        return (build_gather(),
                (lambda b: [b[0].addr, b[1].addr, b[2].addr, n]), n_threads)
    if kind == "scatter":
        return (build_scatter(),
                (lambda b: [b[0].addr, b[1].addr, b[2].addr, n]), n_threads)
    v = rng.randrange(0, 99)
    if kind == "partial":
        return (build_partial_fill(),
                (lambda b: [b[2].addr, n, v]), n_threads)
    return (build_struct_kernel(),
            (lambda b: [b[3].addr, n, v]), n_threads)


def _run_one(program, make_args, n_threads, seed, force, validation_ranges):
    rng = random.Random(seed)
    mem, bufs = _fresh_world(rng)
    args = make_args(bufs)
    prog = program
    validation = None
    if validation_ranges is not None:
        prog = instrument_program(program)
        lo = min(b.addr for b in bufs)
        hi = max(b.end for b in bufs)
        if validation_ranges == "full":
            rs = RangeSet([(lo, hi)])
        else:  # "partial": a hole over part of the write target
            rs = RangeSet([(lo, hi - 8 * (N_WORDS // 2))])
        validation = ValidationState(read_ranges=rs, write_ranges=rs)
    run = run_kernel(prog, args, n_threads, mem,
                     validation=validation, force_interpret=force)
    words = [
        tuple(b.load_word(b.addr + 8 * i) for i in range(N_WORDS))
        for b in bufs
    ]
    return {
        "words": words,
        "steps": run.steps,
        "written": run.written_addrs(),
        "read": run.read_addrs(),
        "write_ranges": list(run.write_ranges()),
        "read_ranges": list(run.read_ranges()),
        "violations": [] if validation is None else [
            (v.kernel, v.addr, v.kind, v.tid) for v in validation.violations
        ],
    }


@pytest.mark.parametrize("validation_ranges", [None, "full", "partial"])
def test_differential_fuzz_interpreter_vs_plan(validation_ranges):
    """Random kernels: the plan path must match the interpreter exactly."""
    for seed in range(60):
        rng = random.Random(10_000 + seed)
        program, make_args, n_threads = _scenario(rng)
        slow = _run_one(program, make_args, n_threads, seed,
                        force=True, validation_ranges=validation_ranges)
        fast = _run_one(program, make_args, n_threads, seed,
                        force=False, validation_ranges=validation_ranges)
        assert fast == slow, (
            f"fast path diverged on seed={seed} kernel={program.name} "
            f"validation={validation_ranges}"
        )


def test_fastpath_env_kill_switch(monkeypatch):
    """REPRO_NO_FASTPATH=1 must force every launch through the interpreter."""
    from repro.perf.plans import plan_cache_stats, reset_plan_cache_stats

    monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
    reset_plan_cache_stats()
    mem = DeviceMemory(capacity=16 * MIB, default_data_size=8 * N_WORDS)
    x = mem.alloc(8 * N_WORDS)
    y = mem.alloc(8 * N_WORDS)
    run = run_kernel(build_copy(), [x.addr, y.addr, 8], 8, mem)
    assert run.steps > 0
    stats = plan_cache_stats()
    assert stats["hit"] == 0 and stats["miss"] == 0


# --- DMA coalescing determinism ----------------------------------------------


def _legacy_transfer(engine, engines, direction, nbytes, bandwidth,
                     priority, chunk_bytes):
    """The pre-coalescing per-chunk acquire/timeout/release loop."""
    res = engines.for_direction(direction)
    moved = 0
    while moved < nbytes:
        step = min(chunk_bytes, nbytes - moved)
        req = yield res.acquire(priority=priority)
        try:
            yield engine.timeout(units.transfer_time(step, bandwidth))
        finally:
            res.release(req)
        moved += step
    return moved


def _dma_run(use_legacy, injections, n_engines=1):
    eng = Engine()
    dma = DmaEngineSet(eng, "g0", n_engines)
    stamps = []

    def bulk():
        if use_legacy:
            n = yield from _legacy_transfer(
                eng, dma, Direction.D2H, 256 * units.MIB, 16e9,
                CHECKPOINT_PRIORITY, 4 * units.MIB)
        else:
            n = yield from transfer(
                eng, dma, Direction.D2H, 256 * units.MIB, bandwidth=16e9,
                priority=CHECKPOINT_PRIORITY, chunk_bytes=4 * units.MIB)
        stamps.append(("bulk", eng.now, n))

    def app(i, delay, nbytes):
        yield eng.timeout(delay)
        n = yield from transfer(eng, dma, Direction.H2D, nbytes,
                                bandwidth=16e9, priority=APP_PRIORITY)
        stamps.append((f"app{i}", eng.now, n))

    eng.spawn(bulk())
    for i, (delay, nbytes) in enumerate(injections):
        eng.spawn(app(i, delay, nbytes))
    eng.run()
    return stamps, eng.events_scheduled


def test_dma_coalescing_preserves_exact_completion_stamps():
    """Coalesced vs per-chunk: bit-identical stamps under app traffic."""
    for seed in range(20):
        rng = random.Random(777 + seed)
        injections = [
            (rng.uniform(0.0, 0.02), rng.choice([1, 4, 8, 32]) * units.MIB)
            for _ in range(rng.randrange(0, 5))
        ]
        fast, fast_events = _dma_run(False, injections)
        slow, slow_events = _dma_run(True, injections)
        assert fast == slow, f"stamps diverged for seed={seed}: {injections}"
        assert fast_events <= slow_events


def test_dma_coalescing_uncontended_event_count():
    """An uncontended 64-chunk bulk copy needs O(1) events, not O(chunks)."""
    fast, fast_events = _dma_run(False, injections=[])
    slow, slow_events = _dma_run(True, injections=[])
    assert fast == slow
    assert slow_events > 100          # per-chunk loop: ~3 events per chunk
    assert fast_events < 10           # coalesced: one run, one timeout


def test_watch_waiters_fires_only_when_queueing():
    from repro.sim.resources import PriorityResource

    eng = Engine()
    res = PriorityResource(eng, capacity=1)
    watch = res.watch_waiters()
    first = res.acquire()         # granted immediately: no waiter
    assert first.triggered and not watch.triggered
    second = res.acquire()        # queues behind first: watcher fires
    assert not second.triggered and watch.triggered
    assert watch.value is second
    # One-shot: a new watcher is needed for the next arrival.
    watch2 = res.watch_waiters()
    res.unwatch_waiters(watch2)
    res.acquire()
    assert not watch2.triggered


def test_timeout_until_fires_at_absolute_time():
    eng = Engine()
    seen = []

    def proc():
        yield eng.timeout(1.5)
        yield eng.timeout_until(4.25)
        seen.append(eng.now)

    eng.run(eng.spawn(proc()))
    assert seen == [4.25]
