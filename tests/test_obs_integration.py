"""End-to-end observability: a CoW checkpoint under a live workload.

The acceptance bar for the obs layer is attribution, not just plumbing:
the per-GPU stall components it reports (quiesce gate + CoW guard +
app-priority DMA wait + validator twin overhead) must sum to the stall
actually measured from step times, within 1%.
"""

import json

import pytest

from repro import obs
from repro.obs import export
from repro.experiments.harness import build_world, setup_app
from repro.tasks.fault_tolerance import EXPERIMENT_CHUNK

APP = "resnet152-train"  # single GPU: every stall is on one issue chain
STEPS = 3


@pytest.fixture(autouse=True)
def _no_observer_leak():
    yield
    obs.uninstall()


@pytest.fixture(scope="module")
def cow_run():
    """One observed CoW checkpoint run; (world, base, stall)."""
    world = build_world(APP, observe=True)
    eng, phos = world.engine, world.phos
    setup_app(world, warm=2)

    def driver(eng):
        t0 = eng.now
        yield from world.workload.run(STEPS)
        base = (eng.now - t0) / STEPS
        handle = phos.checkpoint(world.process, mode="cow",
                                 chunk_bytes=EXPERIMENT_CHUNK)
        t1 = eng.now
        yield from world.workload.run(STEPS)
        stall = (eng.now - t1) - STEPS * base
        yield handle
        return base, max(0.0, stall)

    base, stall = eng.run_process(driver(eng))
    eng.run()
    obs.uninstall()
    return world, base, stall


def test_stall_components_sum_to_measured_stall(cow_run):
    world, _, stall = cow_run
    assert stall > 0
    components = export.app_stall_components(world.observer, 0)
    attributed = sum(components.values())
    assert attributed == pytest.approx(stall, rel=0.01)
    # The dominant §8.2 cost — the validator twin — must be attributed.
    assert components["twin"] > 0
    # The guard stalled at least one launch for a shadow copy.
    assert components["guard"] > 0


def test_stall_breakdown_report(cow_run):
    world, _, stall = cow_run
    report = export.stall_breakdown(world.observer, [0],
                                    measured_stall=stall)
    rows = {row["component"]: row for row in report.rows}
    assert set(rows) >= {"gate", "guard", "dma-wait", "twin",
                         "attributed", "measured"}
    assert rows["attributed"]["seconds"] == pytest.approx(stall, rel=0.01)
    assert "residual" in report.notes
    assert "gpu0" in report.title


def test_span_tree_has_checkpoint_phases(cow_run):
    world, _, _ = cow_run
    spans = world.observer.spans
    (cow,) = spans.find("checkpoint/cow")
    child_names = {c.name for c in cow.children}
    assert "quiesce" in child_names
    assert spans.total("quiesce") > 0
    # Copy activity happened on the GPU side during the session.
    assert spans.find("gpu-copy")


def test_dma_gauges_show_both_priorities(cow_run):
    """§5: both app (0) and bulk (10) traffic held engines — the
    per-priority occupancy gauges are the preemption evidence."""
    world, _, _ = cow_run
    metrics = world.observer.metrics
    for priority in (0, 10):
        gauge = metrics.get("resource/gpu0-dma/in-use", priority=priority)
        assert gauge is not None, f"no in-use gauge for priority {priority}"
        assert gauge.time_integral() > 0
    moved = metrics.get("dma/gpu0-dma/bytes", priority=10, cls="bulk",
                        direction="d2h")
    assert moved is not None and moved.value > 0


def test_dma_report_lists_app_and_bulk_rows(cow_run):
    world, _, _ = cow_run
    report = export.dma_report(world.observer)
    priorities = {row["priority"] for row in report.rows
                  if row["engine"] == "gpu0-dma"}
    assert {0, 10} <= {int(p) for p in priorities}


def test_snapshot_json_round_trip(cow_run):
    world, _, _ = cow_run
    text = export.to_json(world.observer)
    data = json.loads(text)
    assert data["virtual_time"] == world.engine.now
    names = {c["name"] for c in data["metrics"]["counters"]}
    assert "validator/overhead-seconds" in names
    root_names = {s["name"] for s in data["spans"]}
    assert "checkpoint/cow" in root_names


def test_render_produces_full_report(cow_run):
    world, _, _ = cow_run
    text = export.render(world.observer, label=APP)
    assert "span tree" in text
    assert "checkpoint/cow" in text
    assert "DMA engine arbitration" in text
