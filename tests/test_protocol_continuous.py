"""Integration tests: the ``continuous`` streaming checkpoint protocol."""

import pytest

from repro.api.runtime import GpuProcess
from repro.cluster import Machine
from repro.core.daemon import Phos
from repro.core.protocols import registry
from repro.core.protocols.base import ProtocolConfig
from repro.core.protocols.continuous import ContinuousCheckpoint
from repro.core.sdk import PhosSdk
from repro.errors import ReproError
from repro.gpu.context import GpuContext
from repro.sim import Engine
from repro.storage.media import tier_stack

from tests.toyapp import ToyApp, image_gpu_state, snapshot_process


def make_world(buf_size=1 << 20):
    eng = Engine()
    machine = Machine(eng, n_gpus=1)
    phos = Phos(eng, machine, use_context_pool=False)
    process = GpuProcess(eng, machine, name="app", gpu_indices=[0],
                        cpu_pages=8)
    process.runtime.adopt_context(0, GpuContext(gpu_index=0))
    phos.attach(process)
    app = ToyApp(process, buf_size=buf_size)
    return eng, machine, phos, process, app


def test_registered_and_streaming():
    assert "continuous" in registry.names("checkpoint")
    cls = registry.get("continuous", "checkpoint")
    assert cls is ContinuousCheckpoint
    assert getattr(cls, "streaming", False) is True


def test_stream_commits_a_restorable_chain():
    eng, machine, phos, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        last, stream = yield phos.checkpoint(process, mode="continuous",
                                             name="s", rounds=3)
        expected, _cpu = snapshot_process(process)
        return last, stream, expected

    last, stream, expected = eng.run_process(driver(eng))
    eng.run()
    assert stream.complete and stream.rounds_committed == 3
    catalog = machine.dram.images
    for i, image in enumerate(stream.images):
        assert catalog.is_committed(image)
        if i:
            assert image.parent_id == stream.images[i - 1].id
    assert stream.images[0].parent_id is None  # round 0 is the chain root
    assert image_gpu_state(last) == expected


def test_stream_replicates_to_lower_tiers():
    eng, machine, phos, process, app = make_world()
    tiers = tier_stack(eng, machine.dram)

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        return (yield phos.checkpoint(process, mode="continuous",
                                      rounds=2, drain_tiers=tiers))

    last, stream = eng.run_process(driver(eng))
    eng.run()
    assert stream.drain_stats.images_drained == 2
    for tier in tiers[1:]:
        for image in stream.images:
            replica = tier.images.lookup(image.id)
            assert replica is not None and replica.committed
            assert replica is not image  # per-tier object
        assert not tier.images.staged_images()


def test_interval_paces_rounds():
    eng, machine, phos, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        yield from app.run(1)
        t0 = eng.now
        _, stream = yield phos.checkpoint(process, mode="continuous",
                                          rounds=3, interval=0.5)
        return eng.now - t0, stream

    elapsed, stream = eng.run_process(driver(eng))
    eng.run()
    assert stream.rounds_committed == 3
    assert elapsed >= 2 * 0.5  # two inter-round gaps


def test_deltas_are_dirty_scaled():
    """Rounds after the root store only what changed between rounds."""
    eng, machine, phos, process, app = make_world()

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        return (yield phos.checkpoint(process, mode="continuous",
                                      rounds=3))

    last, stream = eng.run_process(driver(eng))
    eng.run()
    root, *deltas = stream.images
    for delta in deltas:
        assert delta.stored_bytes() <= root.stored_bytes()
        # Logical state is complete even when little is stored.
        assert delta.gpu_bytes() == root.gpu_bytes()


def test_drain_tiers_must_start_at_the_medium():
    eng, machine, phos, process, app = make_world()
    other = tier_stack(eng, machine.dram)[1:]  # does not start at dram

    def driver(eng):
        yield from app.setup()
        yield from app.run(1)
        try:
            yield phos.checkpoint(process, mode="continuous",
                                  drain_tiers=other)
        except ReproError as err:
            return str(err)
        return None

    msg = eng.run_process(driver(eng))
    eng.run()
    assert msg is not None and "drain_tiers[0]" in msg


def test_reachable_from_the_sdk():
    eng, machine, phos, process, app = make_world()
    sdk = PhosSdk(phos, process)
    assert "continuous" in sdk.protocols()

    def driver(eng):
        yield from app.setup()
        yield from app.run(1)
        assert sdk.checkpoint(mode="continuous", rounds=2)
        yield from sdk.wait_inflight()
        return sdk.last_image

    last = eng.run_process(driver(eng))
    eng.run()
    assert last is not None and machine.dram.images.is_committed(last)


def test_unsupported_tunable_rejected():
    with pytest.raises(ReproError, match="does not support"):
        ContinuousCheckpoint(ProtocolConfig(precopy_rounds=2))
