"""Unit tests for the PHOS daemon and the application SDK."""

import pytest

from repro.api.runtime import GpuProcess
from repro.cluster import Machine
from repro.core.daemon import Phos
from repro.core.sdk import PhosSdk
from repro.errors import CheckpointError
from repro.gpu.context import GpuContext
from repro.sim import Engine

from tests.toyapp import ToyApp, image_gpu_state, snapshot_process


def make_world(n_gpus=1):
    eng = Engine()
    machine = Machine(eng, n_gpus=n_gpus)
    phos = Phos(eng, machine, use_context_pool=False)
    return eng, machine, phos


def attach_app(eng, machine, phos, name="app", gpus=(0,)):
    process = GpuProcess(eng, machine, name=name, gpu_indices=list(gpus),
                         cpu_pages=8)
    for i in gpus:
        process.runtime.adopt_context(i, GpuContext(gpu_index=i))
    phos.attach(process)
    app = ToyApp(process)
    return process, app


def test_checkpoint_requires_attachment():
    eng, machine, phos = make_world()
    process = GpuProcess(eng, machine, name="stranger", gpu_indices=[0])
    with pytest.raises(CheckpointError, match="not attached"):
        phos.checkpoint(process)


def test_unknown_mode_rejected():
    eng, machine, phos = make_world()
    process, app = attach_app(eng, machine, phos)
    with pytest.raises(CheckpointError, match="unknown checkpoint mode"):
        phos.checkpoint(process, mode="quantum")


def test_stop_world_mode_through_daemon():
    eng, machine, phos = make_world()
    process, app = attach_app(eng, machine, phos)

    def driver(eng):
        yield from app.setup()
        yield from app.run(1)
        image, session = yield phos.checkpoint(process, mode="stop-world")
        return image, session

    image, session = eng.run_process(driver(eng))
    assert session is None
    assert image.finalized


def test_consistent_multi_process_checkpoint():
    """§7: one global quiesce, then per-process CoW — images of both
    processes reflect the same consistent cut."""
    eng, machine, phos = make_world(n_gpus=2)
    p1, app1 = attach_app(eng, machine, phos, name="p1", gpus=(0,))
    p2, app2 = attach_app(eng, machine, phos, name="p2", gpus=(1,))
    p2.runtime.adopt_context(1, GpuContext(gpu_index=1))
    app2.gpu_index = 1

    def driver(eng):
        yield from app1.setup()
        yield from app2.setup()
        yield from app1.run(2)
        yield from app2.run(2)
        handle = phos.checkpoint_consistent([p1, p2])
        yield from app1.run(2, start=2)
        results = yield handle
        return results

    results = eng.run_process(driver(eng))
    eng.run()
    assert len(results) == 2
    for image, session in results:
        assert image.finalized
        assert not session.aborted
    # The two checkpoints were cut at the same quiesce point.
    t1s = [image.checkpoint_time for image, _ in results]
    assert max(t1s) - min(t1s) < 0.05


def test_kill_releases_device_memory():
    eng, machine, phos = make_world()
    process, app = attach_app(eng, machine, phos)

    def driver(eng):
        yield from app.setup()

    eng.run_process(driver(eng))
    used_before = machine.gpu(0).memory.used
    assert used_before > 0
    phos.kill(process)
    assert machine.gpu(0).memory.used == 0
    with pytest.raises(CheckpointError):
        phos.frontend_of(process)


def test_sdk_checkpoint_is_asynchronous():
    eng, machine, phos = make_world()
    process, app = attach_app(eng, machine, phos)
    sdk = PhosSdk(phos, process)

    def driver(eng):
        yield from app.setup()
        yield from app.run(1)
        t0 = eng.now
        started = sdk.checkpoint(name="sdk-test")
        issued_instantly = (eng.now - t0) < 1e-9
        yield from app.run(2, start=1)
        yield from sdk.wait_inflight()
        return started, issued_instantly

    started, instant = eng.run_process(driver(eng))
    eng.run()
    assert started and instant
    assert sdk.checkpoints_taken == 1
    assert sdk.last_image is not None
    assert sdk.last_image.name == "sdk-test"


def test_sdk_skips_when_previous_inflight():
    eng, machine, phos = make_world()
    # Big buffers: the first checkpoint is still copying when the
    # second request arrives.
    from repro.units import MIB

    process, _ = attach_app(eng, machine, phos)
    app = ToyApp(process, buf_size=256 * MIB, kernel_flops=1e9)
    sdk = PhosSdk(phos, process)

    def driver(eng):
        yield from app.setup()
        yield from app.run(1)
        first = sdk.checkpoint()
        second = sdk.checkpoint()  # previous one still running
        yield from sdk.wait_inflight()
        third = sdk.checkpoint()
        yield from sdk.wait_inflight()
        return first, second, third

    first, second, third = eng.run_process(driver(eng))
    eng.run()
    assert first and not second and third
    assert sdk.checkpoints_taken == 2
    assert sdk.checkpoints_skipped == 1


def test_restore_from_daemon_image_roundtrip():
    eng, machine, phos = make_world()
    process, app = attach_app(eng, machine, phos)

    def driver(eng):
        yield from app.setup()
        yield from app.run(2)
        image, session = yield phos.checkpoint(process, mode="cow")
        expected = image_gpu_state(image)
        machine2 = Machine(eng, name="m2", n_gpus=1)
        phos2 = Phos(eng, machine2, use_context_pool=False)
        result = yield from phos2.restore(
            image, gpu_indices=[0], machine=machine2, concurrent=True
        )
        new_process, frontend, rsession = result
        yield rsession.done
        got, _ = snapshot_process(new_process)
        return expected, got

    expected, got = eng.run_process(driver(eng))
    eng.run()
    assert expected == got
